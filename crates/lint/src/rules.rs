//! The eight lint rules plus the allow-hygiene meta-rule.
//!
//! | id | name | scope |
//! |----|------|-------|
//! | R1 | `no_panic` | every workspace crate, non-test code |
//! | R2 | `lossy_cast` | `mbus-sim`, `mbus-core`, `mbus-stats`, `mbus-topology`, `mbus-server`, `mbus-trace` |
//! | R3 | `eq_doc` | `mbus-analysis`, `mbus-exact` |
//! | R4 | `invariant_wiring` | the seven formula modules |
//! | R5 | `safety_comment` | every `unsafe` site, test code included |
//! | R6 | `lock_discipline` | every crate with `Mutex`/`RwLock`/`Condvar` fields, non-test code |
//! | R7 | `atomics_ordering` | every atomic op on a declared `Atomic*` field/static, non-test code |
//! | R8 | `unchecked_result` | discarded workspace `Result`s, non-test code |
//! | —  | `allow_hygiene` | pragmas and the `lint.allow` file themselves |
//!
//! R1–R4 run on the cleaned lines alone; R5–R8 additionally use the item
//! tree ([`crate::items`]) and the workspace call-graph index
//! ([`crate::callgraph`]).

use crate::callgraph::WorkspaceIndex;
use crate::items::{FileAnalysis, UnsafeKind};
use crate::lexer::{fn_items, idents, next_significant_char, CleanFile};
use std::fmt;

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1: no `unwrap()`/`expect(`/`panic!`/`unreachable!`/`todo!` in
    /// non-test code.
    NoPanic,
    /// R2: no narrowing / sign-changing `as` casts in the numeric crates.
    LossyCast,
    /// R3: paper-formula functions must cite their equation number.
    EqDoc,
    /// R4: bandwidth/probability functions must route results through the
    /// `mbus_stats::prob::check` helpers (directly or by delegation).
    InvariantWiring,
    /// R5: every `unsafe` block/fn/impl/trait must carry a non-empty
    /// `// SAFETY:` rationale (or a `# Safety` doc section for items).
    SafetyComment,
    /// R6: no nested same-lock acquisition, no lock-order inversions
    /// (cycles in the cross-function lock graph), and no user callbacks
    /// invoked while a lock guard is live.
    LockDiscipline,
    /// R7: atomic operations must name their `Ordering` explicitly;
    /// `Relaxed` only on allowlisted stat counters.
    AtomicsOrdering,
    /// R8: no `let _ =` / bare-statement discards of `Result`-returning
    /// workspace calls in non-test code.
    UncheckedResult,
    /// Meta-rule: malformed, reason-less, or stale allows.
    AllowHygiene,
}

impl Rule {
    /// The rule's canonical name, as used inside `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no_panic",
            Rule::LossyCast => "lossy_cast",
            Rule::EqDoc => "eq_doc",
            Rule::InvariantWiring => "invariant_wiring",
            Rule::SafetyComment => "safety_comment",
            Rule::LockDiscipline => "lock_discipline",
            Rule::AtomicsOrdering => "atomics_ordering",
            Rule::UncheckedResult => "unchecked_result",
            Rule::AllowHygiene => "allow_hygiene",
        }
    }

    /// Parses a rule name written in a pragma or allowlist entry.
    pub fn parse(name: &str) -> Option<Rule> {
        match name {
            "no_panic" => Some(Rule::NoPanic),
            "lossy_cast" => Some(Rule::LossyCast),
            "eq_doc" => Some(Rule::EqDoc),
            "invariant_wiring" => Some(Rule::InvariantWiring),
            "safety_comment" => Some(Rule::SafetyComment),
            "lock_discipline" => Some(Rule::LockDiscipline),
            "atomics_ordering" => Some(Rule::AtomicsOrdering),
            "unchecked_result" => Some(Rule::UncheckedResult),
            _ => None,
        }
    }

    /// Every enforced rule, in report order (hygiene excluded — it is a
    /// property of suppressions, not of source files).
    pub const ALL: [Rule; 8] = [
        Rule::NoPanic,
        Rule::LossyCast,
        Rule::EqDoc,
        Rule::InvariantWiring,
        Rule::SafetyComment,
        Rule::LockDiscipline,
        Rule::AtomicsOrdering,
        Rule::UncheckedResult,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// Runs every applicable rule over one analyzed file.
///
/// `crate_name` is the directory name under `crates/` (or `multibus` for the
/// root package); `rel_path` is the workspace-relative path used in reports.
/// Files under `tests/` directories get only R5 (unsafe code in tests still
/// needs a rationale); `src/` files get the full rule set. `index` routes
/// the workspace-level findings (lock-order cycles, cross-call
/// re-acquisitions, `Result`-returning fn names) back to their files.
pub fn check_file(
    crate_name: &str,
    rel_path: &str,
    analysis: &FileAnalysis,
    index: &WorkspaceIndex,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let file = &analysis.clean;
    if !analysis.is_test_file {
        if no_panic_applies(crate_name) {
            no_panic(rel_path, file, &mut out);
        }
        if LOSSY_CAST_CRATES.contains(&crate_name) {
            lossy_cast(rel_path, file, &mut out);
        }
        if EQ_DOC_CRATES.contains(&crate_name) {
            eq_doc(rel_path, file, &mut out);
        }
        if FORMULA_MODULES.iter().any(|m| rel_path.ends_with(m)) {
            invariant_wiring(rel_path, file, &mut out);
        }
        lock_discipline(rel_path, analysis, index, &mut out);
        atomics_ordering(rel_path, analysis, &mut out);
        unchecked_result(rel_path, analysis, index, &mut out);
    }
    safety_comment(rel_path, analysis, &mut out);
    out.sort_by(|a, b| {
        a.line
            .cmp(&b.line)
            .then_with(|| a.rule.name().cmp(b.rule.name()))
    });
    out
}

/// Crates R2 applies to (the numeric/hot-loop layers, the server's JSON
/// number handling, and the trace codec — narrowing a varint or payload
/// value silently corrupts it).
pub const LOSSY_CAST_CRATES: [&str; 6] = ["sim", "core", "stats", "topology", "server", "trace"];

/// Crates R3 applies to.
pub const EQ_DOC_CRATES: [&str; 2] = ["analysis", "exact"];

/// The eight formula modules R4 applies to.
pub const FORMULA_MODULES: [&str; 8] = [
    "crates/analysis/src/bandwidth.rs",
    "crates/analysis/src/degraded.rs",
    "crates/analysis/src/paper.rs",
    "crates/exact/src/enumerate.rs",
    "crates/exact/src/lumped.rs",
    "crates/exact/src/markov.rs",
    "crates/exact/src/transform.rs",
    "crates/fabric/src/analytic.rs",
];

/// R1 applies to every workspace crate (the CLI included — its command
/// paths are exactly the user-reachable ones).
fn no_panic_applies(_crate_name: &str) -> bool {
    true
}

/// R1: flag panic-capable calls/macros in non-test code.
fn no_panic(rel_path: &str, file: &CleanFile, out: &mut Vec<Violation>) {
    for (line_no, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (col, tok) in idents(&line.code) {
            let after = col + tok.chars().count();
            let next = next_significant_char(&line.code, after);
            let hit = match tok.as_str() {
                "unwrap" | "expect" => next == Some('('),
                "panic" | "unreachable" | "todo" | "unimplemented" => next == Some('!'),
                _ => false,
            };
            if hit {
                out.push(Violation {
                    rule: Rule::NoPanic,
                    path: rel_path.to_owned(),
                    line: line_no + 1,
                    message: format!(
                        "`{tok}` can panic at runtime; return an error instead \
                         (or justify with `// lint:allow(no_panic, reason)`)"
                    ),
                });
            }
        }
    }
}

/// Integer targets an `as` cast can truncate or sign-change into, given the
/// workspace's prevailing `usize`/`u64` working types.
const NARROWING_TARGETS: [&str; 8] = ["i8", "i16", "i32", "i64", "isize", "u8", "u16", "u32"];

/// R2: flag `as` casts whose target can lose value range.
fn lossy_cast(rel_path: &str, file: &CleanFile, out: &mut Vec<Violation>) {
    for (line_no, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let toks = idents(&line.code);
        for pair in toks.windows(2) {
            let [(_, kw), (_, target)] = pair else {
                continue;
            };
            if kw == "as" && NARROWING_TARGETS.contains(&target.as_str()) {
                out.push(Violation {
                    rule: Rule::LossyCast,
                    path: rel_path.to_owned(),
                    line: line_no + 1,
                    message: format!(
                        "`as {target}` can truncate or change sign; use `try_from` \
                         (or justify with `// lint:allow(lossy_cast, reason)`)"
                    ),
                });
            }
        }
    }
}

/// Splits `eq4_full_bandwidth`-style names into their equation number.
fn equation_number(name: &str) -> Option<u32> {
    let rest = name.strip_prefix("eq")?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    let tail = &rest[digits.len()..];
    if !(tail.is_empty() || tail.starts_with('_')) {
        return None;
    }
    digits.parse().ok()
}

/// Whether doc text cites any parenthesized equation number like `(4)`.
fn cites_some_equation(doc: &str) -> bool {
    let chars: Vec<char> = doc.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '(' {
            let mut j = i + 1;
            while j < chars.len() && chars[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 1 && chars.get(j) == Some(&')') {
                return true;
            }
        }
    }
    false
}

/// R3: equation-named public functions must cite their number; every public
/// function in `paper.rs` must cite *some* equation.
fn eq_doc(rel_path: &str, file: &CleanFile, out: &mut Vec<Violation>) {
    let is_paper_module = rel_path.ends_with("analysis/src/paper.rs");
    for item in fn_items(file) {
        if !item.is_plain_pub || file.lines[item.line].in_test {
            continue;
        }
        if let Some(n) = equation_number(&item.name) {
            let needle = format!("({n})");
            if !item.doc.contains(&needle) {
                out.push(Violation {
                    rule: Rule::EqDoc,
                    path: rel_path.to_owned(),
                    line: item.line + 1,
                    message: format!(
                        "`{}` implements a paper formula but its doc comment \
                         does not cite `eq ({n})`",
                        item.name
                    ),
                });
            }
        } else if is_paper_module && !cites_some_equation(&item.doc) {
            out.push(Violation {
                rule: Rule::EqDoc,
                path: rel_path.to_owned(),
                line: item.line + 1,
                message: format!(
                    "`{}` lives in the paper-formula module but its doc comment \
                     cites no equation number like `eq (N)`",
                    item.name
                ),
            });
        }
    }
}

/// The runtime checker entry points in `mbus_stats::prob::check`.
const CHECKER_FNS: [&str; 5] = [
    "assert_probability",
    "assert_probabilities",
    "assert_distribution_sums_to_one",
    "assert_bandwidth_bounds",
    "checked_probability",
];

/// Whether a function name marks a bandwidth/probability-producing formula.
fn is_formula_name(name: &str) -> bool {
    name.contains("bandwidth")
        || name.contains("probability")
        || name.contains("analyze")
        || name.contains("pmf")
        || name.contains("steady_state")
}

/// R4: formula functions must call a checker or delegate to another
/// formula/checker function that does.
fn invariant_wiring(rel_path: &str, file: &CleanFile, out: &mut Vec<Violation>) {
    for item in fn_items(file) {
        if !item.is_plain_pub || file.lines[item.line].in_test || !is_formula_name(&item.name) {
            continue;
        }
        let mut wired = false;
        for (col, tok) in idents(&item.body) {
            let after = col + tok.chars().count();
            if next_significant_char(&item.body, after) != Some('(') {
                continue;
            }
            if CHECKER_FNS.contains(&tok.as_str())
                || tok.starts_with("check")
                || (is_formula_name(&tok) && tok != item.name)
            {
                wired = true;
                break;
            }
        }
        if !wired {
            out.push(Violation {
                rule: Rule::InvariantWiring,
                path: rel_path.to_owned(),
                line: item.line + 1,
                message: format!(
                    "`{}` returns a bandwidth/probability but never routes it \
                     through `mbus_stats::prob::check` (directly or via a \
                     delegate formula function)",
                    item.name
                ),
            });
        }
    }
}

/// R5: every `unsafe` site needs a non-empty `SAFETY:` rationale.
fn safety_comment(rel_path: &str, analysis: &FileAnalysis, out: &mut Vec<Violation>) {
    for site in &analysis.sites {
        if site.rationale.is_some() {
            continue;
        }
        let hint = match site.kind {
            UnsafeKind::Block => "a `// SAFETY:` comment",
            _ => "a `// SAFETY:` comment or a `# Safety` doc section",
        };
        out.push(Violation {
            rule: Rule::SafetyComment,
            path: rel_path.to_owned(),
            line: site.line + 1,
            message: format!(
                "{} has no safety rationale; add {hint} explaining why the \
                 invariants hold",
                site.kind.label()
            ),
        });
    }
}

/// Receivers allowed to use `Ordering::Relaxed`: monotonic stat counters
/// whose values are only ever read for reporting, never used to order
/// other memory operations.
pub const RELAXED_COUNTERS: [&str; 14] = [
    "hits",
    "misses",
    "inserts",
    "retained",
    "total",
    "shed",
    "responses_4xx",
    "responses_5xx",
    "workers",
    "busy_workers",
    "requests",
    "errors",
    "cache_hits",
    "latency_saturated",
];

/// Whether a violation line sits in test-only code (unit-test modules
/// inside `src/` files).
fn line_in_test(analysis: &FileAnalysis, line: usize) -> bool {
    analysis.clean.lines.get(line).is_some_and(|l| l.in_test)
}

/// R6: nested same-lock acquisition, callbacks invoked under a guard, and
/// workspace-level lock-order findings routed to this file.
fn lock_discipline(
    rel_path: &str,
    analysis: &FileAnalysis,
    index: &WorkspaceIndex,
    out: &mut Vec<Violation>,
) {
    for facts in &analysis.facts {
        for (lock, line) in &facts.nested_same {
            if line_in_test(analysis, *line) {
                continue;
            }
            out.push(Violation {
                rule: Rule::LockDiscipline,
                path: rel_path.to_owned(),
                line: line + 1,
                message: format!(
                    "lock `{lock}` acquired again while its guard is still \
                     live in `{}` — self-deadlock on non-reentrant std locks",
                    facts.name
                ),
            });
        }
        for (param, lock, line) in &facts.callback_under_lock {
            if line_in_test(analysis, *line) {
                continue;
            }
            out.push(Violation {
                rule: Rule::LockDiscipline,
                path: rel_path.to_owned(),
                line: line + 1,
                message: format!(
                    "callback `{param}` invoked in `{}` while guard of \
                     `{lock}` is live; run user code unlocked so re-entrant \
                     lookups cannot deadlock",
                    facts.name
                ),
            });
        }
    }
    for finding in index.cycles.iter().chain(&index.reacquires) {
        if finding.path == rel_path && !line_in_test(analysis, finding.line) {
            out.push(Violation {
                rule: Rule::LockDiscipline,
                path: rel_path.to_owned(),
                line: finding.line + 1,
                message: finding.message.clone(),
            });
        }
    }
}

/// R7: atomic ops must name an `Ordering`; `Relaxed` only on allowlisted
/// stat counters.
fn atomics_ordering(rel_path: &str, analysis: &FileAnalysis, out: &mut Vec<Violation>) {
    for facts in &analysis.facts {
        for op in &facts.atomic_ops {
            if line_in_test(analysis, op.line) {
                continue;
            }
            if op.orderings.is_empty() {
                out.push(Violation {
                    rule: Rule::AtomicsOrdering,
                    path: rel_path.to_owned(),
                    line: op.line + 1,
                    message: format!(
                        "`{}.{}` names no explicit `Ordering`; spell out the \
                         memory ordering at the call site",
                        op.receiver, op.method
                    ),
                });
            } else if op.orderings.iter().any(|o| o == "Relaxed")
                && !RELAXED_COUNTERS.contains(&op.receiver.as_str())
            {
                out.push(Violation {
                    rule: Rule::AtomicsOrdering,
                    path: rel_path.to_owned(),
                    line: op.line + 1,
                    message: format!(
                        "`{}.{}` uses `Ordering::Relaxed` but `{}` is not an \
                         allowlisted stat counter; use an acquire/release \
                         ordering or justify with an allow",
                        op.receiver, op.method, op.receiver
                    ),
                });
            }
        }
    }
}

/// R8: flag `let _ = f(...)` and bare `f(...);` statements whose final
/// depth-0 call resolves (by name, unanimously) to a `Result`-returning
/// workspace fn. Statements containing `?` or macros are exempt.
fn unchecked_result(
    rel_path: &str,
    analysis: &FileAnalysis,
    index: &WorkspaceIndex,
    out: &mut Vec<Violation>,
) {
    // Statement boundaries over the whole token stream: `;` `{` `}`, but
    // only at paren/bracket depth 0 — the `;` inside `vec![0u16; m]` or a
    // closure argument does not end the enclosing statement.
    let toks = &analysis.toks;
    let mut start = 0usize;
    let mut depth = 0usize;
    for i in 0..=toks.len() {
        if i < toks.len() {
            if toks[i].is_sym('(') || toks[i].is_sym('[') {
                depth += 1;
            } else if toks[i].is_sym(')') || toks[i].is_sym(']') {
                depth = depth.saturating_sub(1);
            }
        }
        let boundary = i == toks.len()
            || (depth == 0 && (toks[i].is_sym(';') || toks[i].is_sym('{') || toks[i].is_sym('}')));
        if !boundary {
            continue;
        }
        // Only `;`-terminated statements discard values.
        if i < toks.len() && toks[i].is_sym(';') {
            check_discard_stmt(rel_path, analysis, index, &toks[start..i], out);
        }
        start = i + 1;
    }
}

/// Examines one `;`-terminated statement for a discarded workspace Result.
fn check_discard_stmt(
    rel_path: &str,
    analysis: &FileAnalysis,
    index: &WorkspaceIndex,
    stmt: &[crate::items::Tok],
    out: &mut Vec<Violation>,
) {
    if stmt.is_empty() || line_in_test(analysis, stmt[0].line) {
        return;
    }
    if stmt.iter().any(|t| t.is_sym('?')) {
        return; // propagated
    }
    let is_let_underscore =
        stmt.len() > 2 && stmt[0].is_ident("let") && stmt[1].is_ident("_") && stmt[2].is_sym('=');
    let has_binding = stmt
        .iter()
        .any(|t| t.is_sym('=') || t.is_ident("let") || t.is_ident("return"));
    if !is_let_underscore && has_binding {
        return; // assigned or returned somewhere — not a discard
    }
    // Last call target at paren depth 0: `ident (` outside any nesting.
    // A macro (`ident !`) is not a fn call.
    let body = if is_let_underscore { &stmt[3..] } else { stmt };
    let mut depth = 0usize;
    let mut last_call: Option<(&str, usize)> = None;
    for (j, t) in body.iter().enumerate() {
        if t.is_sym('(') || t.is_sym('[') {
            depth += 1;
        } else if t.is_sym(')') || t.is_sym(']') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 {
            if let Some(w) = t.ident() {
                let next = body.get(j + 1);
                if next.is_some_and(|n| n.is_sym('(')) {
                    last_call = Some((w, t.line));
                } else if next.is_some_and(|n| n.is_sym('!')) {
                    return; // macro statement — not checkable by name
                }
            }
        }
    }
    let Some((callee, line)) = last_call else {
        return;
    };
    if index.result_fns.contains(callee) {
        let form = if is_let_underscore {
            "`let _ =`"
        } else {
            "bare statement"
        };
        out.push(Violation {
            rule: Rule::UncheckedResult,
            path: rel_path.to_owned(),
            line: line + 1,
            message: format!(
                "{form} discards the `Result` of `{callee}`; handle or \
                 propagate it (or justify with `// lint:allow(unchecked_result, reason)`)"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{build_index, file_facts_of};
    use crate::items::{analyze_file, concurrency_decls, tokenize};
    use crate::lexer::clean;

    fn run_as(crate_name: &str, rel_path: &str, src: &str, is_test_file: bool) -> Vec<Violation> {
        let file = clean(src);
        let toks = tokenize(&file);
        let decls = concurrency_decls(&toks);
        let analysis = analyze_file(file, &decls, is_test_file);
        let index = build_index(&[file_facts_of(crate_name, rel_path, &analysis)]);
        check_file(crate_name, rel_path, &analysis, &index)
    }

    fn run(crate_name: &str, rel_path: &str, src: &str) -> Vec<Violation> {
        run_as(crate_name, rel_path, src, false)
    }

    #[test]
    fn no_panic_flags_each_forbidden_form() {
        let src = "\
fn a(x: Option<u8>) -> u8 { x.unwrap() }
fn b(x: Option<u8>) -> u8 { x.expect(\"msg\") }
fn c() { panic!(\"boom\") }
fn d() { unreachable!() }
fn e() { todo!() }
fn f() { unimplemented!() }
";
        let hits = run("sim", "crates/sim/src/x.rs", src);
        assert_eq!(hits.len(), 6);
        assert!(hits.iter().all(|v| v.rule == Rule::NoPanic));
        let lines: Vec<usize> = hits.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn no_panic_ignores_test_code_and_lookalikes() {
        let src = "\
fn live() -> u8 { opts.unwrap_or(3) }
fn wrapper() { let unwrap = 1; drop(unwrap); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
";
        assert!(run("sim", "crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn lossy_cast_scopes_to_numeric_crates() {
        let src = "fn f(x: usize) -> u8 { x as u8 }\n";
        let hits = run("stats", "crates/stats/src/x.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::LossyCast);
        // Out-of-scope crate: silent.
        assert!(run("analysis", "crates/analysis/src/x.rs", src).is_empty());
    }

    #[test]
    fn widening_and_float_casts_pass() {
        let src = "fn f(x: u8, y: usize) -> f64 { (x as usize + y) as f64 }\n";
        assert!(run("stats", "crates/stats/src/x.rs", src).is_empty());
    }

    #[test]
    fn eq_doc_requires_matching_citation() {
        let good = "/// Implements eq (4) of the paper.\npub fn eq4_full(x: f64) -> f64 { x }\n";
        assert!(run("analysis", "crates/analysis/src/other.rs", good).is_empty());
        let wrong_number = "/// Implements eq (6).\npub fn eq4_full(x: f64) -> f64 { x }\n";
        let hits = run("analysis", "crates/analysis/src/other.rs", wrong_number);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::EqDoc);
        // Private and pub(crate) fns are exempt.
        let private = "fn eq4_full(x: f64) -> f64 { x }\n";
        assert!(run("analysis", "crates/analysis/src/other.rs", private).is_empty());
    }

    #[test]
    fn eq_doc_requires_some_citation_in_paper_module() {
        let src = "/// Helper with no equation.\npub fn helper(x: f64) -> f64 { x }\n";
        let hits = run("analysis", "crates/analysis/src/paper.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::EqDoc);
        // The same function outside paper.rs is fine.
        assert!(run("analysis", "crates/analysis/src/sweep.rs", src).is_empty());
    }

    #[test]
    fn invariant_wiring_accepts_checker_calls_and_delegation() {
        let direct = "\
pub fn memory_bandwidth(x: f64) -> f64 {
    check::assert_bandwidth_bounds(x, 1, 1, 1);
    x
}
";
        assert!(run("analysis", "crates/analysis/src/bandwidth.rs", direct).is_empty());
        let delegated = "\
pub fn memory_bandwidth(x: f64) -> f64 { full_bandwidth(x) }
";
        assert!(run("analysis", "crates/analysis/src/bandwidth.rs", delegated).is_empty());
    }

    #[test]
    fn invariant_wiring_flags_unchecked_formula_fns() {
        let src = "pub fn memory_bandwidth(x: f64) -> f64 { x * 2.0 }\n";
        let hits = run("analysis", "crates/analysis/src/bandwidth.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::InvariantWiring);
        // Same file, non-formula name: exempt.
        let other = "pub fn render(x: f64) -> f64 { x * 2.0 }\n";
        assert!(run("analysis", "crates/analysis/src/bandwidth.rs", other).is_empty());
        // Formula fn outside the formula modules: exempt.
        assert!(run("analysis", "crates/analysis/src/sweep.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_required_on_every_unsafe_site() {
        let bad = "pub fn f() { unsafe { libc() } }\n";
        let hits = run("server", "crates/server/src/x.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::SafetyComment);
        assert_eq!(hits[0].line, 1);
        let good = "pub fn f() {\n    // SAFETY: handler only sets an atomic flag.\n    unsafe { libc() }\n}\n";
        assert!(run("server", "crates/server/src/x.rs", good).is_empty());
    }

    #[test]
    fn safety_comment_applies_in_test_files_too() {
        let bad = "unsafe impl GlobalAlloc for A {}\n";
        let hits = run_as("sim", "crates/sim/tests/alloc.rs", bad, true);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::SafetyComment);
        // And nothing else runs on test files.
        let panicky = "fn t() { x.unwrap(); }\n";
        assert!(run_as("sim", "crates/sim/tests/t.rs", panicky, true).is_empty());
    }

    #[test]
    fn lock_discipline_flags_nested_and_callback_under_guard() {
        let src = "\
struct S { q: Mutex<u8> }
impl S {
    pub fn bad<F: FnOnce() -> u8>(&self, compute: F) -> u8 {
        let g = self.q.lock();
        let h = self.q.lock();
        compute()
    }
}
";
        let hits = run("stats", "crates/stats/src/x.rs", src);
        let nested: Vec<_> = hits
            .iter()
            .filter(|v| v.message.contains("guard is still"))
            .collect();
        assert_eq!(nested.len(), 1);
        assert_eq!(nested[0].line, 5);
        assert!(hits
            .iter()
            .any(|v| v.message.contains("callback `compute`")));
        assert!(hits.iter().all(|v| v.rule == Rule::LockDiscipline));
    }

    #[test]
    fn lock_discipline_reports_order_inversions() {
        let src = "\
struct S { a: Mutex<u8>, b: Mutex<u8> }
impl S {
    fn fwd(&self) { let x = self.a.lock(); let y = self.b.lock(); }
    fn rev(&self) { let y = self.b.lock(); let x = self.a.lock(); }
}
";
        let hits = run("server", "crates/server/src/x.rs", src);
        assert!(
            hits.iter()
                .any(|v| v.rule == Rule::LockDiscipline && v.message.contains("inversion")),
            "{hits:?}"
        );
    }

    #[test]
    fn atomics_ordering_requires_explicit_ordering() {
        let src = "\
struct S { flag: AtomicBool }
impl S {
    fn f(&self, o: Ordering) {
        self.flag.store(true, o);
        self.flag.store(true, Ordering::SeqCst);
    }
}
";
        let hits = run("server", "crates/server/src/x.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, Rule::AtomicsOrdering);
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn relaxed_only_on_allowlisted_counters() {
        let ok = "\
struct S { hits: AtomicU64 }
impl S { fn f(&self) { self.hits.fetch_add(1, Ordering::Relaxed); } }
";
        assert!(run("stats", "crates/stats/src/x.rs", ok).is_empty());
        let bad = "\
struct S { ready: AtomicBool }
impl S { fn f(&self) { self.ready.store(true, Ordering::Relaxed); } }
";
        let hits = run("server", "crates/server/src/x.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::AtomicsOrdering);
        assert!(hits[0].message.contains("Relaxed"));
    }

    #[test]
    fn unchecked_result_flags_let_underscore_discards() {
        let src = "\
fn send() -> Result<(), E> { Ok(()) }
fn f() { let _ = send(); }
fn g() -> Result<(), E> { send()?; Ok(()) }
fn h() { let _ = infallible(); }
";
        let hits = run("server", "crates/server/src/x.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, Rule::UncheckedResult);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn unchecked_result_flags_bare_statement_discards() {
        let src = "\
fn send() -> Result<(), E> { Ok(()) }
fn f(x: &mut S) { send(); other_thing(x); }
";
        let hits = run("server", "crates/server/src/x.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn unchecked_result_ignores_macros_and_bound_results() {
        let src = "\
fn send() -> Result<(), E> { Ok(()) }
fn f(w: &mut W) {
    let r = send();
    writeln!(w, \"x\");
    if send().is_err() { log(); }
}
";
        assert!(run("server", "crates/server/src/x.rs", src).is_empty());
    }

    #[test]
    fn unchecked_result_not_split_by_semicolons_inside_brackets() {
        // The `;` in `vec![0u16; m]` must not truncate the statement and
        // hide the trailing `?` that propagates the Result.
        let src = "\
fn intern(v: Vec<u16>) -> Result<usize, E> { Ok(v.len()) }
fn f(m: usize) -> Result<(), E> {
    intern(vec![0u16; m])?;
    Ok(())
}
";
        assert!(run("exact", "crates/exact/src/x.rs", src).is_empty());
    }

    #[test]
    fn equation_number_parsing() {
        assert_eq!(equation_number("eq4_full_bandwidth"), Some(4));
        assert_eq!(equation_number("eq12_kclass"), Some(12));
        assert_eq!(equation_number("eq9"), Some(9));
        assert_eq!(equation_number("equation"), None);
        assert_eq!(equation_number("eqx_thing"), None);
        assert_eq!(equation_number("frequency"), None);
    }
}
