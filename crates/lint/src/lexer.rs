//! A small hand-rolled Rust lexer for the lint pass.
//!
//! The workspace vendors no `syn`, so the rules operate on a *cleaned* view
//! of each source file: comments, string literals, raw strings, and char
//! literals are blanked out (their delimiters survive so expression shape is
//! preserved), doc-comment text and `// lint:allow(rule, reason)` pragmas
//! are captured on the side, and a second pass marks every line that lives
//! inside a `#[cfg(test)]` region, a `mod tests { ... }` block, or a
//! `#[test]` item by tracking brace nesting.
//!
//! This is deliberately not a full parser. It only has to be exact about the
//! four things the rules key on: what is code vs. comment/literal, what is
//! test-only, which doc text belongs to which item, and where function
//! bodies start and end.

/// One `lint:allow` pragma extracted from a line comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Rule identifier as written, e.g. `no_panic`.
    pub rule: String,
    /// Free-text justification; the engine rejects empty reasons.
    pub reason: String,
    /// Line (0-based) the pragma comment sits on.
    pub line: usize,
    /// Whether the pragma shares its line with code (applies to that line)
    /// or stands alone (applies to the next line that carries code).
    pub own_line: bool,
}

/// A single source line after cleaning.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line's code with comment/literal contents blanked.
    pub code: String,
    /// Doc-comment text (`///` or `//!`) carried by this line, if any.
    pub doc: Option<String>,
    /// Plain (non-doc) comment text carried by this line, if any. The
    /// `safety_comment` rule reads `SAFETY:` rationales from here.
    pub comment: Option<String>,
    /// Whether the line is inside test-only code.
    pub in_test: bool,
}

/// A cleaned source file: per-line code plus captured pragmas.
#[derive(Debug, Clone, Default)]
pub struct CleanFile {
    /// Cleaned lines, index = 0-based line number.
    pub lines: Vec<Line>,
    /// All pragmas found in the file, in source order.
    pub pragmas: Vec<Pragma>,
}

/// A function item discovered in the cleaned source.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Line (0-based) of the `fn` keyword.
    pub line: usize,
    /// `true` for plain `pub fn`; `false` for `pub(crate)`/`pub(super)`.
    pub is_plain_pub: bool,
    /// Concatenated doc-comment text attached to the item.
    pub doc: String,
    /// The cleaned body text between the item's outermost braces.
    pub body: String,
}

/// `true` for characters that may continue a Rust identifier.
fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Strips comments and literal contents from `source`.
///
/// The cleaned text keeps the same line structure as the input, so line
/// numbers reported against it map directly back to the file on disk.
pub fn clean(source: &str) -> CleanFile {
    let chars: Vec<char> = source.chars().collect();
    let mut out = CleanFile {
        lines: vec![Line::default()],
        pragmas: Vec::new(),
    };
    let mut i = 0usize;
    // Last non-whitespace character emitted as code; used to tell raw
    // strings (`r"..."`) apart from identifiers that merely end in `r`.
    let mut prev_code: Option<char> = None;

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                out.lines.push(Line::default());
                i += 1;
            }
            '/' if next == Some('/') => {
                // Line comment. Capture its text for doc/pragma handling.
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                let line_no = out.lines.len() - 1;
                let mut is_doc = false;
                if let Some(doc) = text.strip_prefix('/') {
                    // `///` outer doc (but `////...` is a plain comment).
                    if !doc.starts_with('/') {
                        append_doc(&mut out.lines, doc);
                        is_doc = true;
                    }
                } else if let Some(doc) = text.strip_prefix('!') {
                    // `//!` inner doc.
                    append_doc(&mut out.lines, doc);
                    is_doc = true;
                }
                if !is_doc {
                    append_comment(&mut out.lines, &text);
                }
                if let Some((rule, reason)) = (!is_doc).then(|| parse_pragma(&text)).flatten() {
                    let own_line = current_code_is_blank(&out.lines);
                    out.pragmas.push(Pragma {
                        rule,
                        reason,
                        line: line_no,
                        own_line,
                    });
                }
                i = j;
            }
            '/' if next == Some('*') => {
                // Block comment; Rust block comments nest. Text is captured
                // per line so `SAFETY:` rationales in block form count too.
                let mut depth = 1usize;
                let mut text = String::new();
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            append_comment(&mut out.lines, &text);
                            text.clear();
                            out.lines.push(Line::default());
                        } else {
                            text.push(chars[i]);
                        }
                        i += 1;
                    }
                }
                append_comment(&mut out.lines, &text);
            }
            '"' => {
                emit(&mut out.lines, '"');
                i = skip_string(&chars, i + 1, &mut out.lines);
                emit(&mut out.lines, '"');
                prev_code = Some('"');
            }
            '\'' => {
                // Lifetime or char literal. `'a` / `'static` are lifetimes;
                // `'x'`, `'\n'`, `'\u{1F600}'` are char literals.
                if next == Some('\\') {
                    i = skip_char_literal(&chars, i + 1);
                    emit_str(&mut out.lines, "' '");
                    prev_code = Some('\'');
                } else if chars.get(i + 2) == Some(&'\'') && next.is_some() {
                    emit_str(&mut out.lines, "' '");
                    i += 3;
                    prev_code = Some('\'');
                } else {
                    // Lifetime: keep the apostrophe so `&'a str` stays code.
                    emit(&mut out.lines, '\'');
                    prev_code = Some('\'');
                    i += 1;
                }
            }
            'r' | 'b' if prev_code.is_none_or(|p| !is_ident_char(p)) => {
                // Possible raw string, byte string, or byte char.
                if let Some(skip) = try_skip_raw_or_byte(&chars, i, &mut out.lines) {
                    i = skip;
                    prev_code = Some('"');
                } else {
                    emit(&mut out.lines, c);
                    prev_code = Some(c);
                    i += 1;
                }
            }
            _ => {
                emit(&mut out.lines, c);
                if !c.is_whitespace() {
                    prev_code = Some(c);
                }
                i += 1;
            }
        }
    }

    mark_test_regions(&mut out.lines);
    out
}

/// Appends `c` to the current (last) line's code.
fn emit(lines: &mut [Line], c: char) {
    if let Some(line) = lines.last_mut() {
        line.code.push(c);
    }
}

/// Appends a short string to the current line's code.
fn emit_str(lines: &mut [Line], s: &str) {
    if let Some(line) = lines.last_mut() {
        line.code.push_str(s);
    }
}

/// Attaches doc text to the current line.
fn append_doc(lines: &mut [Line], text: &str) {
    if let Some(line) = lines.last_mut() {
        let doc = line.doc.get_or_insert_with(String::new);
        doc.push_str(text.trim());
        doc.push(' ');
    }
}

/// Attaches plain-comment text to the current line.
fn append_comment(lines: &mut [Line], text: &str) {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return;
    }
    if let Some(line) = lines.last_mut() {
        let comment = line.comment.get_or_insert_with(String::new);
        if !comment.is_empty() {
            comment.push(' ');
        }
        comment.push_str(trimmed);
    }
}

/// Whether the current line has no non-whitespace code yet.
fn current_code_is_blank(lines: &[Line]) -> bool {
    lines.last().is_none_or(|l| l.code.trim().is_empty())
}

/// Consumes a (possibly multi-line) string literal body starting right
/// after the opening quote; returns the index just past the closing quote.
fn skip_string(chars: &[char], mut i: usize, lines: &mut Vec<Line>) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                lines.push(Line::default());
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes an escaped char literal starting at the backslash; returns the
/// index just past the closing quote.
fn skip_char_literal(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Tries to consume `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, or `b'x'`
/// starting at index `i` (which holds `r` or `b`). Returns the index past
/// the literal, or `None` if the text is not such a literal (e.g. the `r`
/// in an identifier, or a raw identifier `r#foo`).
fn try_skip_raw_or_byte(chars: &[char], i: usize, lines: &mut Vec<Line>) -> Option<usize> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            // Byte char b'x' / b'\n'.
            let mut k = j + 1;
            while k < chars.len() {
                match chars[k] {
                    '\\' => k += 2,
                    '\'' => {
                        emit_str(lines, "' '");
                        return Some(k + 1);
                    }
                    _ => k += 1,
                }
            }
            return Some(k);
        }
        if chars.get(j) == Some(&'"') {
            // Byte string b"...".
            emit(lines, '"');
            let end = skip_string(chars, j + 1, lines);
            emit(lines, '"');
            return Some(end);
        }
        if chars.get(j) != Some(&'r') {
            return None;
        }
        j += 1;
    }
    // At `r`: raw (byte) string r"..." / r#"..."# — or a raw identifier.
    if chars.get(j) != Some(&'r') && chars[i] != 'r' {
        return None;
    }
    if chars[j] == 'r' {
        j += 1;
    }
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None; // raw identifier like r#fn, or plain ident starting r/b
    }
    j += 1;
    emit(lines, '"');
    // Scan for `"` followed by `hashes` hashes.
    while j < chars.len() {
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                emit(lines, '"');
                return Some(k);
            }
            j += 1;
        } else {
            if chars[j] == '\n' {
                lines.push(Line::default());
            }
            j += 1;
        }
    }
    Some(j)
}

/// Parses a `lint:allow(rule, reason)` pragma comment. Only plain (non-doc)
/// comments whose text *starts* with the pragma count, so prose mentions of
/// the syntax do not register as suppressions.
fn parse_pragma(comment: &str) -> Option<(String, String)> {
    let inner = comment.trim_start().strip_prefix("lint:allow(")?;
    let close = inner.find(')')?;
    let inner = &inner[..close];
    let (rule, reason) = match inner.split_once(',') {
        Some((r, why)) => (r.trim().to_owned(), why.trim().to_owned()),
        None => (inner.trim().to_owned(), String::new()),
    };
    Some((rule, reason))
}

/// Second pass: flags lines inside `#[cfg(test)]` regions, `mod tests`
/// blocks, and `#[test]`/`#[bench]` items by tracking brace depth.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth = 0usize;
    // Brace depths at which a test region opened; a line is test code while
    // this stack is non-empty.
    let mut region_starts: Vec<usize> = Vec::new();
    // An attribute/`mod tests` trigger was seen and the region's opening
    // brace has not arrived yet.
    let mut pending = false;

    for line in lines.iter_mut() {
        let trigger = is_test_trigger(&line.code);
        if trigger {
            pending = true;
        }
        let test_at_start = !region_starts.is_empty() || pending;
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        region_starts.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if region_starts.last().is_some_and(|&start| depth <= start) {
                        region_starts.pop();
                    }
                }
                // `#[cfg(test)] mod tests;` — out-of-line test module; the
                // trigger does not carry past the semicolon.
                ';' if pending && region_starts.is_empty() => pending = false,
                _ => {}
            }
        }
        line.in_test = test_at_start || trigger || !region_starts.is_empty();
    }
}

/// Whether a cleaned line of code starts a test-only region.
fn is_test_trigger(code: &str) -> bool {
    let compact: String = code.chars().filter(|c| !c.is_whitespace()).collect();
    compact.contains("#[cfg(test)]")
        || compact.contains("#[test]")
        || compact.contains("#[bench]")
        || compact.contains("#[cfg(alltest") // #[cfg(all(test, ...))]
        || compact.contains("#[cfg(all(test")
        || has_mod_tests(code)
}

/// Whether the line declares `mod tests` / `mod test`.
fn has_mod_tests(code: &str) -> bool {
    let mut toks = idents(code).into_iter().map(|(_, t)| t);
    while let Some(tok) = toks.next() {
        if tok == "mod" {
            if let Some(name) = toks.next() {
                if name == "tests" || name == "test" {
                    return true;
                }
            }
        }
    }
    false
}

/// Identifiers (and keywords) in a cleaned line with their char offsets.
pub fn idents(code: &str) -> Vec<(usize, String)> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i].is_alphabetic() || chars[i] == '_' {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            out.push((start, chars[start..i].iter().collect()));
        } else if chars[i].is_ascii_digit() {
            // Skip numeric literals (incl. suffixes like 1u64) entirely so
            // the suffix does not read as an identifier.
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

/// The first non-whitespace character at or after char offset `from`.
pub fn next_significant_char(code: &str, from: usize) -> Option<char> {
    code.chars().skip(from).find(|c| !c.is_whitespace())
}

/// Extracts every function item (name, docs, body) from a cleaned file.
pub fn fn_items(file: &CleanFile) -> Vec<FnItem> {
    let mut items = Vec::new();
    for (line_no, line) in file.lines.iter().enumerate() {
        let toks = idents(&line.code);
        let mut k = 0usize;
        while k < toks.len() {
            if toks[k].1 != "fn" {
                k += 1;
                continue;
            }
            let Some((_, name)) = toks.get(k + 1) else {
                break;
            };
            // Visibility: look back over `const` / `async` / `unsafe`
            // modifiers for a `pub` token.
            let mut vis_idx = k;
            while vis_idx > 0
                && matches!(
                    toks[vis_idx - 1].1.as_str(),
                    "const" | "async" | "unsafe" | "extern"
                )
            {
                vis_idx -= 1;
            }
            let has_pub = vis_idx > 0 && toks[vis_idx - 1].1 == "pub";
            // `pub(crate)` / `pub(super)`: a `crate`/`super`/`self`/`in`
            // token sits between `pub` and the modifiers.
            let is_plain_pub = has_pub && {
                let after_pub = toks[vis_idx - 1].0 + "pub".len();
                next_significant_char(&line.code, after_pub) != Some('(')
            };
            items.push(FnItem {
                name: name.clone(),
                line: line_no,
                is_plain_pub,
                doc: collect_doc(file, line_no),
                body: collect_body(file, line_no, toks[k].0),
            });
            k += 2;
        }
    }
    items
}

/// Gathers the doc comment attached to an item at `line_no`, walking back
/// over contiguous doc and attribute lines.
fn collect_doc(file: &CleanFile, line_no: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut l = line_no;
    // Walk strictly upwards over the item's contiguous doc and attribute
    // lines; anything else (blank line, other code) ends the attachment.
    while l > 0 {
        l -= 1;
        let line = &file.lines[l];
        if let Some(doc) = &line.doc {
            parts.push(doc);
        } else if !line.code.trim_start().starts_with("#[") {
            break;
        }
    }
    parts.reverse();
    parts.join(" ")
}

/// Extracts the cleaned body of the fn whose `fn` keyword sits at
/// (`line_no`, char offset `col`). Returns an empty string for bodyless
/// declarations.
fn collect_body(file: &CleanFile, line_no: usize, col: usize) -> String {
    let mut body = String::new();
    let mut depth = 0usize;
    let mut seen_open = false;
    for (idx, line) in file.lines.iter().enumerate().skip(line_no) {
        let skip = if idx == line_no { col } else { 0 };
        for c in line.code.chars().skip(skip) {
            if !seen_open {
                match c {
                    '{' => {
                        seen_open = true;
                        depth = 1;
                    }
                    ';' => return body, // declaration without a body
                    _ => {}
                }
            } else {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            return body;
                        }
                    }
                    _ => {}
                }
                body.push(c);
            }
        }
        if seen_open {
            body.push('\n');
        }
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let file = clean("let x = \"unwrap()\"; // unwrap() here\nlet y = 1; /* panic!() */\n");
        assert!(!file.lines[0].code.contains("unwrap"));
        assert!(file.lines[0].code.contains("\"\""), "delimiters survive");
        assert!(!file.lines[1].code.contains("panic"));
        assert!(file.lines[1].code.contains("let y = 1;"));
    }

    #[test]
    fn block_comments_nest_and_keep_line_numbers() {
        let file = clean("a\n/* outer /* inner */ still comment */\nb\n");
        assert_eq!(file.lines[0].code.trim(), "a");
        assert_eq!(file.lines[1].code.trim(), "");
        assert_eq!(file.lines[2].code.trim(), "b");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let file = clean("let s = r#\"panic!(\"boom\")\"#;\nlet t = r\"unwrap()\";\n");
        assert!(!file.lines[0].code.contains("panic"));
        assert!(!file.lines[1].code.contains("unwrap"));
    }

    #[test]
    fn byte_and_char_literals_are_blanked_but_lifetimes_survive() {
        let file = clean("let c = '\\n'; let b = b'x'; fn f<'a>(s: &'a str) {}\n");
        let code = &file.lines[0].code;
        assert!(!code.contains("\\n"));
        assert!(code.contains("' '"), "char blanked to spaces: {code}");
        assert!(code.contains("&'a str"), "lifetime kept: {code}");
    }

    #[test]
    fn identifiers_ending_in_r_are_not_raw_strings() {
        let file = clean("let var = other\"\";\n");
        // `other` ends in `r` but is part of an identifier, so the following
        // quote is an ordinary (empty) string.
        assert!(file.lines[0].code.contains("other"));
    }

    #[test]
    fn multiline_strings_keep_line_structure() {
        let file = clean("let s = \"line one\nline two\";\nlet x = 3;\n");
        assert_eq!(file.lines.len(), 4);
        assert!(file.lines[2].code.contains("let x = 3;"));
    }

    #[test]
    fn cfg_test_regions_are_marked_with_nesting() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn helper() {
        if true {
        }
    }
}
fn also_live() {}
";
        let file = clean(src);
        assert!(!file.lines[0].in_test);
        assert!(file.lines[1].in_test, "attribute line itself is test");
        for l in 2..=7 {
            assert!(file.lines[l].in_test, "line {l} inside mod tests");
        }
        assert!(!file.lines[8].in_test, "code after the region is live");
    }

    #[test]
    fn out_of_line_test_module_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let file = clean(src);
        assert!(!file.lines[2].in_test);
    }

    #[test]
    fn test_attribute_marks_single_item() {
        let src = "#[test]\nfn check() {\n    body();\n}\nfn live() {}\n";
        let file = clean(src);
        assert!(file.lines[1].in_test);
        assert!(file.lines[2].in_test);
        assert!(!file.lines[4].in_test);
    }

    #[test]
    fn pragmas_are_captured_with_placement() {
        let src = "\
// lint:allow(no_panic, invariant holds by construction)
foo().unwrap();
bar().unwrap(); // lint:allow(no_panic, same-line form)
";
        let file = clean(src);
        assert_eq!(file.pragmas.len(), 2);
        assert!(file.pragmas[0].own_line);
        assert_eq!(file.pragmas[0].rule, "no_panic");
        assert_eq!(file.pragmas[0].reason, "invariant holds by construction");
        assert!(!file.pragmas[1].own_line);
        assert_eq!(file.pragmas[1].line, 2);
    }

    #[test]
    fn doc_comment_mentions_of_the_syntax_are_not_pragmas() {
        let src = "/// Suppress with `// lint:allow(no_panic, reason)`.\nfn f() {}\n";
        let file = clean(src);
        assert!(file.pragmas.is_empty());
        assert!(file.lines[0].doc.is_some());
    }

    #[test]
    fn prose_after_comment_start_is_not_a_pragma() {
        let src = "// the lint:allow(no_panic, x) syntax is described elsewhere\n";
        let file = clean(src);
        assert!(file.pragmas.is_empty(), "pragma must start the comment");
    }

    #[test]
    fn fn_items_capture_visibility_docs_and_bodies() {
        let src = "\
/// Computes the eq (4) value.
pub fn eq4_full_bandwidth(x: f64) -> f64 {
    helper(x)
}
pub(crate) fn internal() {}
fn private() {}
";
        let file = clean(src);
        let items = fn_items(&file);
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].name, "eq4_full_bandwidth");
        assert!(items[0].is_plain_pub);
        assert!(items[0].doc.contains("(4)"));
        assert!(items[0].body.contains("helper"));
        assert!(!items[1].is_plain_pub, "pub(crate) is not plain pub");
        assert!(!items[2].is_plain_pub);
    }

    #[test]
    fn bodyless_declarations_have_empty_bodies() {
        let file = clean("trait T {\n    fn declared(&self) -> f64;\n}\n");
        let items = fn_items(&file);
        assert_eq!(items.len(), 1);
        assert!(items[0].body.is_empty());
    }

    #[test]
    fn plain_comment_text_is_captured_for_safety_rationales() {
        let file = clean("// SAFETY: the pointer outlives the call\nunsafe { x() }\n");
        assert_eq!(
            file.lines[0].comment.as_deref(),
            Some("SAFETY: the pointer outlives the call")
        );
        assert!(file.lines[1].comment.is_none());
    }

    #[test]
    fn block_comment_text_is_captured_per_line() {
        let file = clean("let a = 1; /* SAFETY: first\nsecond line */ let b = 2;\n");
        assert_eq!(file.lines[0].comment.as_deref(), Some("SAFETY: first"));
        assert_eq!(file.lines[1].comment.as_deref(), Some("second line"));
        assert!(file.lines[1].code.contains("let b = 2;"));
    }

    #[test]
    fn deeply_nested_block_comments_resync_exactly() {
        // Three levels of nesting plus brace noise inside the comment; the
        // item-tree pass depends on none of those braces leaking into code.
        let src = "fn a() {\n/* { /* {{ /* } */ }} */ } */\n}\nfn b() {}\n";
        let file = clean(src);
        assert_eq!(file.lines[1].code.trim(), "", "comment fully blanked");
        let items = fn_items(&file);
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].name, "b");
    }

    #[test]
    fn raw_strings_with_hashes_do_not_unbalance_braces() {
        // The `"#` inside the r##...## literal must not close it early, or
        // the stray `{` would corrupt every later body span.
        let src =
            "fn a() -> &'static str {\n    r##\"brace { quote \"# }\"##\n}\nfn b() { body() }\n";
        let file = clean(src);
        let items = fn_items(&file);
        assert_eq!(items.len(), 2, "{:?}", file.lines);
        assert!(items[1].body.contains("body"));
        assert!(!items[0].body.contains('{'), "literal braces blanked");
    }

    #[test]
    fn byte_literal_braces_do_not_unbalance_bodies() {
        let src = "fn a(c: u8) -> bool {\n    c == b'{' || c == b'}'\n}\nfn b() { body() }\n";
        let file = clean(src);
        assert!(!file.lines[1].code.contains('{'), "{}", file.lines[1].code);
        let items = fn_items(&file);
        assert_eq!(items.len(), 2);
        assert!(items[1].body.contains("body"));
    }

    #[test]
    fn char_literal_braces_and_escaped_quotes_stay_blanked() {
        let src = "fn a(c: char) -> bool {\n    c == '{' || c == '\\'' || c == '}'\n}\nfn b() { body() }\n";
        let file = clean(src);
        assert!(!file.lines[1].code.contains('{'));
        assert!(!file.lines[1].code.contains('}'));
        let items = fn_items(&file);
        assert_eq!(items.len(), 2);
        assert!(items[1].body.contains("body"));
    }

    #[test]
    fn raw_identifiers_are_not_mistaken_for_raw_strings() {
        let file = clean("let r#type = 1; let x = r#type + 1;\n");
        assert!(file.lines[0].code.contains("type"));
        assert!(file.lines[0].code.contains("+ 1"));
    }

    #[test]
    fn idents_skip_numeric_literal_suffixes() {
        let toks: Vec<String> = idents("let x = 1u64 + mask;")
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        assert!(toks.contains(&"mask".to_owned()));
        assert!(!toks.contains(&"u64".to_owned()));
    }
}
