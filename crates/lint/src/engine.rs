//! Workspace walker and suppression engine.
//!
//! Resolution order for every raw violation:
//!
//! 1. an inline `// lint:allow(rule, reason)` pragma on the same line, or on
//!    a comment-only line directly above;
//! 2. a file-level entry in the checked-in `lint.allow` at the workspace
//!    root (`rule path reason...` per line, `#` comments);
//! 3. otherwise the violation is reported.
//!
//! Allows must pull their weight: a pragma or allowlist entry that carries
//! no reason, names an unknown rule, or suppresses nothing at all is itself
//! reported under the `allow_hygiene` meta-rule.

use crate::callgraph::{build_index, file_facts_of, WorkspaceIndex};
use crate::items::{analyze_file, concurrency_decls, tokenize, ConcurrencyDecls, FileAnalysis};
use crate::lexer::{clean, Pragma};
use crate::rules::{check_file, Rule, Violation};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One file-level entry from `lint.allow`.
#[derive(Debug, Clone)]
struct AllowEntry {
    rule: Rule,
    path: String,
    line: usize,
    used: bool,
}

/// One `unsafe` site in the workspace inventory (`mbus lint
/// --unsafe-report`).
#[derive(Debug, Clone)]
pub struct UnsafeInventoryEntry {
    /// Crate the site lives in.
    pub crate_name: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// Kind label (`unsafe block` / `unsafe fn` / ...).
    pub kind: String,
    /// The `SAFETY:` rationale, if present.
    pub rationale: Option<String>,
}

/// Outcome of a full workspace pass.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Violations that survived suppression, sorted by (path, line).
    pub violations: Vec<Violation>,
    /// Number of violations suppressed by pragmas or allowlist entries.
    pub suppressed: usize,
    /// Every `unsafe` site found, annotated or not (the `--unsafe-report`
    /// inventory).
    pub unsafe_sites: Vec<UnsafeInventoryEntry>,
    /// Names of the rules that ran in this pass.
    pub rules_active: Vec<String>,
    /// Sorted crate names the pass covered.
    pub crates_scanned: Vec<String>,
}

impl LintReport {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Name of the checked-in allowlist file at the workspace root.
pub const ALLOWLIST_FILE: &str = "lint.allow";

/// Runs the full pass over the workspace rooted at `root`.
///
/// # Errors
///
/// Returns any I/O error raised while walking or reading sources.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    let allow_path = root.join(ALLOWLIST_FILE);
    let allow_source = match fs::read_to_string(&allow_path) {
        Ok(text) => text,
        Err(err) if err.kind() == io::ErrorKind::NotFound => String::new(),
        Err(err) => return Err(err),
    };
    let (mut entries, mut allow_violations) = parse_allowlist(&allow_source);
    report.violations.append(&mut allow_violations);

    // Phase 1: analyze every file. Concurrency declarations are unioned
    // per crate first so a lock declared in one module resolves when a
    // sibling module acquires it; then the workspace-wide call-graph index
    // is built from the non-test facts of every file.
    let mut sources: Vec<(String, String, String)> = Vec::new();
    for (rel_path, crate_name) in workspace_sources(root)? {
        let source = fs::read_to_string(root.join(&rel_path))?;
        sources.push((rel_path, crate_name, source));
    }
    let mut crate_decls: BTreeMap<String, ConcurrencyDecls> = BTreeMap::new();
    let mut cleaned: Vec<(String, String, crate::lexer::CleanFile)> = Vec::new();
    for (rel_path, crate_name, source) in sources {
        let file = clean(&source);
        let decls = concurrency_decls(&tokenize(&file));
        let merged = crate_decls.entry(crate_name.clone()).or_default();
        merged.locks.extend(decls.locks);
        merged.atomics.extend(decls.atomics);
        merged.condvars.extend(decls.condvars);
        cleaned.push((rel_path, crate_name, file));
    }
    let mut analyses: Vec<(String, String, FileAnalysis)> = Vec::new();
    for (rel_path, crate_name, file) in cleaned {
        let decls = crate_decls.entry(crate_name.clone()).or_default();
        let is_test_file = is_test_path(&rel_path);
        analyses.push((
            rel_path.clone(),
            crate_name,
            analyze_file(file, decls, is_test_file),
        ));
    }
    let facts: Vec<_> = analyses
        .iter()
        .filter(|(_, _, a)| !a.is_test_file)
        .map(|(rel_path, crate_name, a)| file_facts_of(crate_name, rel_path, a))
        .collect();
    let index = build_index(&facts);

    // Phase 2: per-file rule checks + suppression resolution.
    for (rel_path, crate_name, analysis) in &analyses {
        report.files_scanned += 1;
        for site in &analysis.sites {
            report.unsafe_sites.push(UnsafeInventoryEntry {
                crate_name: crate_name.clone(),
                path: rel_path.clone(),
                line: site.line + 1,
                kind: site.kind.label().to_owned(),
                rationale: site.rationale.clone(),
            });
        }
        lint_file_inner(
            crate_name,
            rel_path,
            analysis,
            &index,
            &mut entries,
            &mut report,
        );
    }
    report.rules_active = Rule::ALL.iter().map(|r| r.name().to_owned()).collect();
    let mut crates: Vec<String> = analyses.iter().map(|(_, c, _)| c.clone()).collect();
    crates.sort();
    crates.dedup();
    report.crates_scanned = crates;

    for entry in &entries {
        if !entry.used {
            report.violations.push(Violation {
                rule: Rule::AllowHygiene,
                path: ALLOWLIST_FILE.to_owned(),
                line: entry.line,
                message: format!(
                    "allowlist entry `{} {}` suppresses nothing; delete it",
                    entry.rule, entry.path
                ),
            });
        }
    }

    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// Lints a single in-memory source file (no allowlist). Used by the rule
/// unit tests and doc examples. The file is its own call-graph universe:
/// cross-file lock edges obviously cannot be seen here.
pub fn lint_source(crate_name: &str, rel_path: &str, source: &str) -> LintReport {
    let mut report = LintReport {
        files_scanned: 1,
        rules_active: Rule::ALL.iter().map(|r| r.name().to_owned()).collect(),
        crates_scanned: vec![crate_name.to_owned()],
        ..LintReport::default()
    };
    let file = clean(source);
    let decls = concurrency_decls(&tokenize(&file));
    let analysis = analyze_file(file, &decls, is_test_path(rel_path));
    let index = build_index(&[file_facts_of(crate_name, rel_path, &analysis)]);
    for site in &analysis.sites {
        report.unsafe_sites.push(UnsafeInventoryEntry {
            crate_name: crate_name.to_owned(),
            path: rel_path.to_owned(),
            line: site.line + 1,
            kind: site.kind.label().to_owned(),
            rationale: site.rationale.clone(),
        });
    }
    let mut entries = Vec::new();
    lint_file_inner(
        crate_name,
        rel_path,
        &analysis,
        &index,
        &mut entries,
        &mut report,
    );
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report
}

/// Whether a workspace-relative path is an integration-test file.
fn is_test_path(rel_path: &str) -> bool {
    rel_path.starts_with("tests/") || rel_path.contains("/tests/")
}

/// Shared per-file pass: run rules, resolve suppressions, and check pragma
/// hygiene.
fn lint_file_inner(
    crate_name: &str,
    rel_path: &str,
    analysis: &FileAnalysis,
    index: &WorkspaceIndex,
    entries: &mut [AllowEntry],
    report: &mut LintReport,
) {
    let file = &analysis.clean;
    let raw = check_file(crate_name, rel_path, analysis, index);

    // Map each pragma to the line it guards: its own line, or the next line
    // that carries code when the pragma stands alone.
    let mut guards: BTreeMap<(usize, &str), usize> = BTreeMap::new();
    let mut pragma_used = vec![false; file.pragmas.len()];
    for (idx, pragma) in file.pragmas.iter().enumerate() {
        match validate_pragma(pragma, rel_path) {
            Ok(rule) => {
                let guarded = if pragma.own_line {
                    file.lines
                        .iter()
                        .enumerate()
                        .skip(pragma.line + 1)
                        .find(|(_, l)| !l.code.trim().is_empty())
                        .map_or(usize::MAX, |(n, _)| n)
                } else {
                    pragma.line
                };
                guards.insert((guarded, rule.name()), idx);
            }
            Err(violation) => {
                pragma_used[idx] = true; // malformed: reported, not "stale"
                report.violations.push(violation);
            }
        }
    }

    for violation in raw {
        let key = (violation.line - 1, violation.rule.name());
        if let Some(&idx) = guards.get(&key) {
            pragma_used[idx] = true;
            report.suppressed += 1;
            continue;
        }
        if let Some(entry) = entries
            .iter_mut()
            .find(|e| e.rule == violation.rule && e.path == violation.path)
        {
            entry.used = true;
            report.suppressed += 1;
            continue;
        }
        report.violations.push(violation);
    }

    for (idx, pragma) in file.pragmas.iter().enumerate() {
        if !pragma_used[idx] {
            report.violations.push(Violation {
                rule: Rule::AllowHygiene,
                path: rel_path.to_owned(),
                line: pragma.line + 1,
                message: format!(
                    "`lint:allow({}, ...)` suppresses nothing here; delete it",
                    pragma.rule
                ),
            });
        }
    }
}

/// Validates a pragma's rule name and reason.
fn validate_pragma(pragma: &Pragma, rel_path: &str) -> Result<Rule, Violation> {
    let Some(rule) = Rule::parse(&pragma.rule) else {
        return Err(Violation {
            rule: Rule::AllowHygiene,
            path: rel_path.to_owned(),
            line: pragma.line + 1,
            message: format!("`lint:allow({}, ...)` names an unknown rule", pragma.rule),
        });
    };
    if pragma.reason.is_empty() {
        return Err(Violation {
            rule: Rule::AllowHygiene,
            path: rel_path.to_owned(),
            line: pragma.line + 1,
            message: format!(
                "`lint:allow({})` carries no reason; every allow must be justified",
                pragma.rule
            ),
        });
    }
    Ok(rule)
}

/// Parses `lint.allow`: `rule path reason...` per line, `#` comments.
fn parse_allowlist(source: &str) -> (Vec<AllowEntry>, Vec<Violation>) {
    let mut entries = Vec::new();
    let mut violations = Vec::new();
    for (idx, raw_line) in source.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let rule_name = parts.next().unwrap_or_default();
        let path = parts.next().unwrap_or_default();
        let reason = parts.next().unwrap_or_default().trim();
        let Some(rule) = Rule::parse(rule_name) else {
            violations.push(Violation {
                rule: Rule::AllowHygiene,
                path: ALLOWLIST_FILE.to_owned(),
                line: idx + 1,
                message: format!("allowlist entry names unknown rule `{rule_name}`"),
            });
            continue;
        };
        if path.is_empty() || reason.is_empty() {
            violations.push(Violation {
                rule: Rule::AllowHygiene,
                path: ALLOWLIST_FILE.to_owned(),
                line: idx + 1,
                message: "allowlist entries need `rule path reason...`; reason missing".to_owned(),
            });
            continue;
        }
        entries.push(AllowEntry {
            rule,
            path: path.to_owned(),
            line: idx + 1,
            used: false,
        });
    }
    (entries, violations)
}

/// Enumerates every workspace `.rs` source under `root` with its crate
/// name: `src/` and `tests/` of the root package plus `crates/*/src/` and
/// `crates/*/tests/`. Test files get the reduced rule set (`safety_comment`
/// plus pragma hygiene). The vendor tree, `benches/`, `examples/`, and any
/// directory named `fixtures` (lint's own seeded-violation corpora) are out
/// of scope.
///
/// Public so the workspace gate test can assert which files the pass
/// actually covers (e.g. that a newly added crate is walked).
///
/// # Errors
///
/// Returns any I/O error raised while walking the tree.
pub fn workspace_source_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    workspace_sources(root)
}

/// Implementation of [`workspace_source_files`], kept private-named for the
/// internal call sites.
fn workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files: Vec<(String, String)> = Vec::new();
    for sub in ["src", "tests"] {
        let dir = root.join(sub);
        if dir.is_dir() {
            for path in rs_files(&dir)? {
                files.push((relative(root, &path), "multibus".to_owned()));
            }
        }
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let name = crate_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            for sub in ["src", "tests"] {
                let dir = crate_dir.join(sub);
                if !dir.is_dir() {
                    continue;
                }
                for path in rs_files(&dir)? {
                    files.push((relative(root, &path), name.clone()));
                }
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
/// Directories named `fixtures` (deliberately-dirty lint corpora) are
/// skipped.
fn rs_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in fs::read_dir(&current)? {
            let path = entry?.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "fixtures") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative display path with `/` separators.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotated_pragma_suppresses_and_counts() {
        let src = "\
// lint:allow(no_panic, slot is Some by construction)
fn f(x: Option<u8>) -> u8 { x.unwrap() }
";
        let report = lint_source("sim", "crates/sim/src/x.rs", src);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn same_line_pragma_suppresses() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint:allow(no_panic, fixture)\n";
        let report = lint_source("sim", "crates/sim/src/x.rs", src);
        assert!(report.is_clean());
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn reasonless_pragma_is_a_violation() {
        let src = "\
// lint:allow(no_panic)
fn f(x: Option<u8>) -> u8 { x.unwrap() }
";
        let report = lint_source("sim", "crates/sim/src/x.rs", src);
        // The malformed pragma suppresses nothing, so both the hygiene
        // violation and the original no_panic hit surface.
        assert_eq!(report.violations.len(), 2);
        assert!(report
            .violations
            .iter()
            .any(|v| v.rule == Rule::AllowHygiene && v.message.contains("no reason")));
        assert!(report.violations.iter().any(|v| v.rule == Rule::NoPanic));
    }

    #[test]
    fn unknown_rule_pragma_is_a_violation() {
        let src = "// lint:allow(made_up, because)\nfn f() {}\n";
        let report = lint_source("sim", "crates/sim/src/x.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].message.contains("unknown rule"));
    }

    #[test]
    fn stale_pragma_is_a_violation() {
        let src = "// lint:allow(no_panic, nothing to suppress below)\nfn f() {}\n";
        let report = lint_source("sim", "crates/sim/src/x.rs", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, Rule::AllowHygiene);
        assert!(report.violations[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn pragma_for_the_wrong_rule_does_not_suppress() {
        let src = "\
// lint:allow(lossy_cast, wrong rule for this site)
fn f(x: Option<u8>) -> u8 { x.unwrap() }
";
        let report = lint_source("sim", "crates/sim/src/x.rs", src);
        assert!(report.violations.iter().any(|v| v.rule == Rule::NoPanic));
        assert!(report
            .violations
            .iter()
            .any(|v| v.rule == Rule::AllowHygiene));
    }

    #[test]
    fn allowlist_parsing_and_hygiene() {
        let (entries, violations) = parse_allowlist(
            "# comment\n\
             no_panic crates/sim/src/reference.rs frozen reference engine\n\
             bogus_rule crates/sim/src/x.rs some reason\n\
             no_panic crates/sim/src/y.rs\n",
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, Rule::NoPanic);
        assert_eq!(entries[0].path, "crates/sim/src/reference.rs");
        assert_eq!(violations.len(), 2);
        assert!(violations[0].message.contains("unknown rule"));
        assert!(violations[1].message.contains("reason missing"));
    }

    #[test]
    fn workspace_walk_applies_allowlist_and_reports_stale_entries() {
        let root = std::env::temp_dir().join(format!("mbus-lint-fixture-{}", std::process::id()));
        let src_dir = root.join("crates/sim/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(
            src_dir.join("lib.rs"),
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )
        .unwrap();
        fs::write(
            root.join(ALLOWLIST_FILE),
            "no_panic crates/sim/src/lib.rs fixture justification\n\
             no_panic crates/sim/src/gone.rs stale entry\n",
        )
        .unwrap();
        let report = lint_workspace(&root).unwrap();
        fs::remove_dir_all(&root).unwrap();
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.suppressed, 1);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, Rule::AllowHygiene);
        assert!(report.violations[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn reintroduced_unwrap_fails_the_workspace_pass() {
        // The acceptance criterion: dropping an unwrap() into a library
        // crate must turn the report dirty.
        let root = std::env::temp_dir().join(format!("mbus-lint-dirty-{}", std::process::id()));
        let src_dir = root.join("crates/analysis/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(
            src_dir.join("lib.rs"),
            "pub fn f(x: Option<f64>) -> f64 { x.unwrap() }\n",
        )
        .unwrap();
        let report = lint_workspace(&root).unwrap();
        fs::remove_dir_all(&root).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.violations[0].rule, Rule::NoPanic);
    }
}
