//! `mbus-lint` — a dependency-free static-analysis pass over the
//! workspace's own source.
//!
//! The workspace vendors no parser crates, so [`lexer`] implements a small
//! hand-rolled Rust lexer (comments, strings, raw strings, char literals,
//! `#[cfg(test)]`/`mod tests` region tracking) whose cleaned output feeds
//! the rule engine in [`rules`]:
//!
//! - **R1 `no_panic`** — no `unwrap()` / `expect(` / `panic!` /
//!   `unreachable!` / `todo!` in non-test code, locking in the workspace's
//!   no-panic guarantee for user-reachable paths.
//! - **R2 `lossy_cast`** — no narrowing or sign-changing `as` casts in the
//!   numeric crates (`mbus-sim`, `mbus-core`, `mbus-stats`,
//!   `mbus-topology`), the server's JSON number handling
//!   (`mbus-server`), or the trace codec (`mbus-trace`); use
//!   `try_from` or an annotated allow.
//! - **R3 `eq_doc`** — paper-formula functions in `mbus-analysis` /
//!   `mbus-exact` must cite their equation number (`eq (N)`) in docs.
//! - **R4 `invariant_wiring`** — public bandwidth/probability functions in
//!   the seven formula modules must route results through
//!   `mbus_stats::prob::check`.
//!
//! On top of the lexer, [`items`] builds a lightweight item tree (function
//! spans, call sites, `unsafe` sites, lock/atomic declarations) and
//! [`callgraph`] assembles a workspace-wide approximate call graph; these
//! feed the semantic passes:
//!
//! - **R5 `safety_comment`** — every `unsafe` block/fn/impl/trait needs a
//!   non-empty `// SAFETY:` rationale; the full inventory is available via
//!   `mbus lint --unsafe-report`.
//! - **R6 `lock_discipline`** — per-function lock-acquisition analysis over
//!   named `Mutex`/`RwLock`/`Condvar` fields: re-acquiring a lock whose
//!   guard is still live (self-deadlock), lock-order inversions detected as
//!   cycles in the cross-function lock graph, and callbacks invoked while a
//!   guard is live.
//! - **R7 `atomics_ordering`** — atomic operations must name an explicit
//!   `Ordering`; `Relaxed` is allowed only on allowlisted stat counters.
//! - **R8 `unchecked_result`** — no `let _ =` or bare-statement discards of
//!   `Result`-returning workspace calls in non-test code.
//!
//! Violations are suppressed by per-line `// lint:allow(rule, reason)`
//! pragmas or the checked-in `lint.allow` file; reason-less or stale allows
//! are themselves violations (`allow_hygiene`). See [`engine`] for the
//! resolution order and [`report`] for the human/JSON/SARIF renderers used
//! by `mbus lint`.
//!
//! # Examples
//!
//! ```
//! let report = mbus_lint::lint_source(
//!     "sim",
//!     "crates/sim/src/demo.rs",
//!     "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }",
//! );
//! assert_eq!(report.violations.len(), 1);
//! assert_eq!(report.violations[0].rule, mbus_lint::Rule::NoPanic);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod engine;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;

pub use engine::{lint_source, lint_workspace, workspace_source_files, LintReport, ALLOWLIST_FILE};
pub use report::{render_human, render_json, render_sarif, render_unsafe_report};
pub use rules::{Rule, Violation};
