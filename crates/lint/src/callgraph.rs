//! Workspace-wide approximate call graph and cross-function lock analysis.
//!
//! Functions are merged **by name** across the workspace — the item tree
//! has no type information, so `a.evaluate()` resolves to every workspace
//! `fn evaluate`. Two things keep that imprecision useful rather than
//! noisy: ubiquitous std-colliding names ([`COMMON_SKIP`]) never resolve,
//! and unresolved names contribute no edges. Lock identities are
//! crate-qualified (`stats::shards`), so same-named fields in different
//! crates stay distinct.
//!
//! The index answers three questions for rule R6 `lock_discipline`:
//! which locks can a call transitively acquire (fixpoint over the call
//! graph), does any call chain re-acquire a lock already held at the call
//! site, and does the union of intra- and cross-function lock-order edges
//! contain a cycle (lock-order inversion, found per strongly-connected
//! component).

use crate::items::FnFacts;
use std::collections::{BTreeMap, BTreeSet};

/// Method/function names too generic to resolve through the name-merged
/// call graph: std collisions (`len`, `insert`, `clear`, ...) would
/// otherwise attribute every container touch to same-named workspace fns.
pub const COMMON_SKIP: [&str; 44] = [
    "len",
    "get",
    "get_mut",
    "insert",
    "remove",
    "clear",
    "clone",
    "push",
    "pop",
    "iter",
    "into_iter",
    "next",
    "new",
    "default",
    "fmt",
    "lock",
    "read",
    "write",
    "unwrap",
    "expect",
    "ok",
    "err",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "min",
    "max",
    "sum",
    "abs",
    "to_string",
    "to_owned",
    "as_str",
    "as_ref",
    "collect",
    "extend",
    "contains",
    "entry",
    "retain",
    "drain",
    "take",
    "flush",
    "drop",
];

/// Analysis results for one source file, fed into [`build_index`].
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Crate the file belongs to.
    pub crate_name: String,
    /// Repo-relative path.
    pub path: String,
    /// Per-function concurrency facts.
    pub facts: Vec<FnFacts>,
    /// `(fn name, returns Result)` for every fn item in the file.
    pub fns: Vec<(String, bool)>,
}

/// A lock-order edge: `acquired` taken while `held` was live.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Crate-qualified lock already held.
    pub held: String,
    /// Crate-qualified lock acquired under it.
    pub acquired: String,
    /// File the acquiring site (or call site) is in.
    pub path: String,
    /// 0-based line of the site.
    pub line: usize,
    /// Callee name when the edge crosses a function call.
    pub via: Option<String>,
}

/// A workspace-level violation found by the cross-function analysis,
/// routed back to a file so per-file suppression applies.
#[derive(Debug, Clone)]
pub struct GraphFinding {
    /// Repo-relative path of the offending site.
    pub path: String,
    /// 0-based line.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

/// The workspace-wide index built from every file's [`FileFacts`].
#[derive(Debug, Clone, Default)]
pub struct WorkspaceIndex {
    /// Fn names where at least one workspace definition exists and *every*
    /// definition returns `Result` — the targets rule R8 protects.
    pub result_fns: BTreeSet<String>,
    /// All workspace fn names (resolution domain of the call graph).
    pub fn_names: BTreeSet<String>,
    /// Every lock-order edge (intra-fn and cross-fn) with attribution.
    pub lock_edges: Vec<LockEdge>,
    /// Lock-order inversion findings (edges participating in a cycle).
    pub cycles: Vec<GraphFinding>,
    /// Same-lock re-acquisition through a call chain.
    pub reacquires: Vec<GraphFinding>,
}

/// Extracts the call-graph inputs from one analyzed file.
pub fn file_facts_of(
    crate_name: &str,
    path: &str,
    analysis: &crate::items::FileAnalysis,
) -> FileFacts {
    // Unit-test modules inside src files stay out of the index: their
    // helper fns would otherwise pollute `result_fns` unanimity and add
    // phantom lock edges.
    let in_test = |line: usize| analysis.clean.lines.get(line).is_some_and(|l| l.in_test);
    FileFacts {
        crate_name: crate_name.to_owned(),
        path: path.to_owned(),
        facts: analysis
            .facts
            .iter()
            .filter(|f| !in_test(f.line))
            .cloned()
            .collect(),
        fns: analysis
            .fns
            .iter()
            .filter(|s| !in_test(s.line))
            .map(|s| (s.name.clone(), s.returns_result))
            .collect(),
    }
}

/// Builds the workspace index: merges fns by name, runs the transitive
/// lock-set fixpoint, and finds lock-order cycles and cross-call
/// re-acquisitions.
pub fn build_index(files: &[FileFacts]) -> WorkspaceIndex {
    let mut index = WorkspaceIndex::default();

    // Result-returning fn names: all definitions must agree.
    let mut result_votes: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for file in files {
        for (name, returns_result) in &file.fns {
            index.fn_names.insert(name.clone());
            let (yes, total) = result_votes.entry(name.as_str()).or_insert((0, 0));
            *total += 1;
            if *returns_result {
                *yes += 1;
            }
        }
    }
    for (name, (yes, total)) in &result_votes {
        if yes == total && *yes > 0 && !COMMON_SKIP.contains(name) {
            index.result_fns.insert((*name).to_owned());
        }
    }

    // Direct lock sets and call edges, merged by fn name. Lock names are
    // crate-qualified here so cross-crate analysis keeps them distinct.
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for file in files {
        for facts in &file.facts {
            let d = direct.entry(facts.name.clone()).or_default();
            for (lock, _) in &facts.acquires {
                d.insert(qualify(&file.crate_name, lock));
            }
            let c = calls.entry(facts.name.clone()).or_default();
            for callee in &facts.calls {
                if !COMMON_SKIP.contains(&callee.as_str())
                    && index.fn_names.contains(callee)
                    && callee != &facts.name
                {
                    c.insert(callee.clone());
                }
            }
        }
    }

    // Transitive lock sets: fixpoint over the call graph.
    let mut trans = direct.clone();
    loop {
        let mut changed = false;
        let names: Vec<String> = trans.keys().cloned().collect();
        for name in names {
            let mut add: BTreeSet<String> = BTreeSet::new();
            if let Some(cs) = calls.get(&name) {
                for callee in cs {
                    if let Some(locks) = trans.get(callee) {
                        add.extend(locks.iter().cloned());
                    }
                }
            }
            let set = trans.entry(name).or_default();
            let before = set.len();
            set.extend(add);
            changed |= set.len() != before;
        }
        if !changed {
            break;
        }
    }

    // Edges: intra-fn order edges, plus cross-fn edges for every call made
    // under a live guard whose callee transitively acquires locks.
    for file in files {
        for facts in &file.facts {
            for (held, acquired, line) in &facts.order_edges {
                index.lock_edges.push(LockEdge {
                    held: qualify(&file.crate_name, held),
                    acquired: qualify(&file.crate_name, acquired),
                    path: file.path.clone(),
                    line: *line,
                    via: None,
                });
            }
            for (callee, held, line) in &facts.calls_under {
                if COMMON_SKIP.contains(&callee.as_str()) || !index.fn_names.contains(callee) {
                    continue;
                }
                let held_q = qualify(&file.crate_name, held);
                let Some(callee_locks) = trans.get(callee) else {
                    continue;
                };
                for acq in callee_locks {
                    if *acq == held_q {
                        index.reacquires.push(GraphFinding {
                            path: file.path.clone(),
                            line: *line,
                            message: format!(
                                "call to `{callee}` can re-acquire lock `{held_q}` already held here"
                            ),
                        });
                    } else {
                        index.lock_edges.push(LockEdge {
                            held: held_q.clone(),
                            acquired: acq.clone(),
                            path: file.path.clone(),
                            line: *line,
                            via: Some(callee.clone()),
                        });
                    }
                }
            }
        }
    }
    index.lock_edges.sort();
    index.lock_edges.dedup();

    find_cycles(&mut index);
    index
}

/// Crate-qualifies a lock name.
fn qualify(crate_name: &str, lock: &str) -> String {
    format!("{crate_name}::{lock}")
}

/// Finds strongly-connected components of the lock-order graph and emits
/// one finding per edge inside a multi-node SCC (self-loops were already
/// reported as re-acquisitions).
fn find_cycles(index: &mut WorkspaceIndex) {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in &index.lock_edges {
        adj.entry(&e.held).or_default().insert(&e.acquired);
        nodes.insert(&e.held);
        nodes.insert(&e.acquired);
    }
    // Kosaraju: order by DFS finish time on the graph, then collect SCCs on
    // the transpose. Both DFS passes are iterative (no recursion).
    let mut order: Vec<&str> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &start in &nodes {
        if seen.contains(start) {
            continue;
        }
        // (node, child-iteration index) stack.
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        seen.insert(start);
        while let Some((node, idx)) = stack.pop() {
            let children: Vec<&str> = adj
                .get(node)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            if idx < children.len() {
                stack.push((node, idx + 1));
                let child = children[idx];
                if seen.insert(child) {
                    stack.push((child, 0));
                }
            } else {
                order.push(node);
            }
        }
    }
    let mut radj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &index.lock_edges {
        radj.entry(&e.acquired).or_default().insert(&e.held);
    }
    let mut component: BTreeMap<&str, usize> = BTreeMap::new();
    let mut comp_id = 0usize;
    for &start in order.iter().rev() {
        if component.contains_key(start) {
            continue;
        }
        let mut stack = vec![start];
        component.insert(start, comp_id);
        while let Some(node) = stack.pop() {
            for &prev in radj.get(node).into_iter().flatten() {
                if !component.contains_key(prev) {
                    component.insert(prev, comp_id);
                    stack.push(prev);
                }
            }
        }
        comp_id += 1;
    }
    let mut comp_size: BTreeMap<usize, usize> = BTreeMap::new();
    for c in component.values() {
        *comp_size.entry(*c).or_insert(0) += 1;
    }
    let mut findings = Vec::new();
    for e in &index.lock_edges {
        let (Some(a), Some(b)) = (
            component.get(e.held.as_str()),
            component.get(e.acquired.as_str()),
        ) else {
            continue;
        };
        if a == b && comp_size.get(a).copied().unwrap_or(0) > 1 {
            let cycle: Vec<&str> = component
                .iter()
                .filter(|(_, c)| *c == a)
                .map(|(n, _)| *n)
                .collect();
            let via = e
                .via
                .as_deref()
                .map(|v| format!(" via call to `{v}`"))
                .unwrap_or_default();
            findings.push(GraphFinding {
                path: e.path.clone(),
                line: e.line,
                message: format!(
                    "lock-order inversion: `{}` acquired while holding `{}`{via}; cycle over {{{}}}",
                    e.acquired,
                    e.held,
                    cycle.join(", ")
                ),
            });
        }
    }
    index.cycles = findings;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{concurrency_decls, fn_spans, scan_fn, tokenize};
    use crate::lexer::clean;

    fn file_facts(crate_name: &str, path: &str, src: &str) -> FileFacts {
        let file = clean(src);
        let toks = tokenize(&file);
        let decls = concurrency_decls(&toks);
        let spans = fn_spans(&toks);
        FileFacts {
            crate_name: crate_name.to_owned(),
            path: path.to_owned(),
            facts: spans.iter().map(|s| scan_fn(s, &toks, &decls)).collect(),
            fns: spans
                .iter()
                .map(|s| (s.name.clone(), s.returns_result))
                .collect(),
        }
    }

    #[test]
    fn inverted_lock_order_is_a_cycle() {
        let facts = file_facts(
            "demo",
            "src/demo.rs",
            "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             impl S {\n\
               fn fwd(&self) { let ga = self.a.lock().unwrap(); let gb = self.b.lock().unwrap(); }\n\
               fn rev(&self) { let gb = self.b.lock().unwrap(); let ga = self.a.lock().unwrap(); }\n\
             }\n",
        );
        let index = build_index(&[facts]);
        assert!(!index.cycles.is_empty());
        assert!(index.cycles[0].message.contains("lock-order inversion"));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let facts = file_facts(
            "demo",
            "src/demo.rs",
            "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             impl S {\n\
               fn one(&self) { let ga = self.a.lock().unwrap(); let gb = self.b.lock().unwrap(); }\n\
               fn two(&self) { let ga = self.a.lock().unwrap(); let gb = self.b.lock().unwrap(); }\n\
             }\n",
        );
        let index = build_index(&[facts]);
        assert!(index.cycles.is_empty());
        assert!(index.reacquires.is_empty());
    }

    #[test]
    fn cross_function_inversion_is_found() {
        let facts = file_facts(
            "demo",
            "src/demo.rs",
            "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             impl S {\n\
               fn take_b(&self) { let gb = self.b.lock().unwrap(); }\n\
               fn fwd(&self) { let ga = self.a.lock().unwrap(); self.take_b(); }\n\
               fn take_a(&self) { let ga = self.a.lock().unwrap(); }\n\
               fn rev(&self) { let gb = self.b.lock().unwrap(); self.take_a(); }\n\
             }\n",
        );
        let index = build_index(&[facts]);
        assert!(
            index.cycles.iter().any(|c| c.message.contains("via call")),
            "{:?}",
            index.cycles
        );
    }

    #[test]
    fn cross_function_same_lock_reacquire_is_found() {
        let facts = file_facts(
            "demo",
            "src/demo.rs",
            "struct S { a: Mutex<u8> }\n\
             impl S {\n\
               fn inner(&self) { let g = self.a.lock().unwrap(); }\n\
               fn outer(&self) { let g = self.a.lock().unwrap(); self.inner(); }\n\
             }\n",
        );
        let index = build_index(&[facts]);
        assert_eq!(index.reacquires.len(), 1);
        assert!(index.reacquires[0].message.contains("re-acquire"));
        assert_eq!(index.reacquires[0].line, 3);
    }

    #[test]
    fn same_field_name_in_different_crates_stays_distinct() {
        let f1 = file_facts(
            "one",
            "crates/one/src/lib.rs",
            "struct S { q: Mutex<u8>, r: Mutex<u8> }\n\
             impl S { fn fwd(&self) { let a = self.q.lock().unwrap(); let b = self.r.lock().unwrap(); } }\n",
        );
        let f2 = file_facts(
            "two",
            "crates/two/src/lib.rs",
            "struct T { q: Mutex<u8>, r: Mutex<u8> }\n\
             impl T { fn rev(&self) { let b = self.r.lock().unwrap(); let a = self.q.lock().unwrap(); } }\n",
        );
        let index = build_index(&[f1, f2]);
        assert!(index.cycles.is_empty(), "{:?}", index.cycles);
    }

    #[test]
    fn result_fns_require_unanimous_result_returns() {
        let facts = file_facts(
            "demo",
            "src/demo.rs",
            "fn fallible() -> Result<(), E> { Ok(()) }\n\
             fn sometimes() -> Result<(), E> { Ok(()) }\n\
             fn sometimes_not() {}\n\
             mod b { fn sometimes() {} }\n",
        );
        let index = build_index(&[facts]);
        assert!(index.result_fns.contains("fallible"));
        assert!(!index.result_fns.contains("sometimes"), "split vote");
        assert!(!index.result_fns.contains("sometimes_not"));
    }

    #[test]
    fn common_names_do_not_create_edges() {
        // `len` on a Vec under a guard must not resolve to the workspace's
        // lock-acquiring `len`.
        let facts = file_facts(
            "demo",
            "src/demo.rs",
            "struct S { a: Mutex<Vec<u8>>, b: Mutex<u8> }\n\
             impl S {\n\
               fn len(&self) -> usize { let g = self.b.lock().unwrap(); 0 }\n\
               fn f(&self) { let g = self.a.lock().unwrap(); let n = xs.len(); }\n\
             }\n",
        );
        let index = build_index(&[facts]);
        assert!(
            index
                .lock_edges
                .iter()
                .all(|e| e.via.as_deref() != Some("len")),
            "{:?}",
            index.lock_edges
        );
    }
}
