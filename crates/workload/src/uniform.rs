//! The uniform requesting model.

use crate::{RequestModel, WorkloadError};
use serde::{Deserialize, Serialize};

/// The classical uniform memory-reference model: every processor requests
/// every memory with probability `1/M`.
///
/// This is the baseline in every one of the paper's tables ("Unif."
/// columns), and the special case of the hierarchical model where all
/// fractions coincide.
///
/// # Examples
///
/// ```
/// use mbus_workload::{RequestModel, UniformModel};
///
/// let model = UniformModel::new(8, 4)?;
/// assert_eq!(model.prob(3, 2), 0.25);
/// # Ok::<(), mbus_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniformModel {
    n: usize,
    m: usize,
}

impl UniformModel {
    /// A uniform model over `n` processors and `m` memories.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ZeroDimension`] if either count is zero.
    pub fn new(n: usize, m: usize) -> Result<Self, WorkloadError> {
        if n == 0 {
            return Err(WorkloadError::ZeroDimension {
                dimension: "processors",
            });
        }
        if m == 0 {
            return Err(WorkloadError::ZeroDimension {
                dimension: "memories",
            });
        }
        Ok(Self { n, m })
    }
}

impl RequestModel for UniformModel {
    fn processors(&self) -> usize {
        self.n
    }

    fn memories(&self) -> usize {
        self.m
    }

    fn prob(&self, p: usize, j: usize) -> f64 {
        assert!(p < self.n, "processor {p} out of range ({})", self.n);
        assert!(j < self.m, "memory {j} out of range ({})", self.m);
        1.0 / self.m as f64
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dimensions() {
        assert!(UniformModel::new(0, 4).is_err());
        assert!(UniformModel::new(4, 0).is_err());
    }

    #[test]
    fn matrix_is_constant() {
        let m = UniformModel::new(3, 5).unwrap().matrix();
        for p in 0..3 {
            for j in 0..5 {
                assert_eq!(m.prob(p, j), 0.2);
            }
        }
    }

    #[test]
    fn memory_request_prob_closed_form() {
        // X = 1 − (1 − r/M)^N, the classical formula.
        let model = UniformModel::new(8, 8).unwrap();
        let x = model.matrix().memory_request_prob(0, 1.0).unwrap();
        assert!((x - (1.0 - (1.0 - 1.0 / 8.0f64).powi(8))).abs() < 1e-12);
    }
}
