//! Identical-row grouping and canonical fingerprints for [`RequestMatrix`].
//!
//! The hierarchical requesting model (paper eq (1)) makes every processor
//! inside a cluster statistically exchangeable: their request rows are
//! *identical* as `f64` values because the generators compute each row from
//! the same cluster-level fractions. [`RowGroups`] detects that structure by
//! exact floating-point equality (bit-for-bit, via `f64::to_bits`), giving
//! the exact engines `G ≪ N` groups to raise to powers instead of `N`
//! per-processor factors.
//!
//! [`WorkloadFingerprint`] is the exact canonical identity of a matrix
//! (dimensions plus every entry's bit pattern) used as a memo-cache key by
//! the cross-sweep caches; unlike a hash it cannot collide.

use crate::RequestMatrix;

/// A partition of a matrix's processors into groups of bit-identical rows.
///
/// Group indices are assigned in order of first appearance, so group `0`
/// always contains processor `0`, and representatives are strictly
/// increasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowGroups {
    /// `assignment[p]` = group index of processor `p`.
    assignment: Vec<usize>,
    /// First processor of each group (a canonical representative row).
    representatives: Vec<usize>,
    /// Number of processors in each group.
    counts: Vec<usize>,
}

impl RowGroups {
    /// Number of distinct groups `G`.
    pub fn len(&self) -> usize {
        self.representatives.len()
    }

    /// Whether there are no groups (impossible for a valid matrix, but kept
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.representatives.is_empty()
    }

    /// Group index of processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn group_of(&self, p: usize) -> usize {
        self.assignment[p]
    }

    /// Number of processors in group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn count(&self, g: usize) -> usize {
        self.counts[g]
    }

    /// The first (representative) processor of group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn representative(&self, g: usize) -> usize {
        self.representatives[g]
    }

    /// Iterator over `(representative_processor, group_size)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.representatives
            .iter()
            .copied()
            .zip(self.counts.iter().copied())
    }
}

/// Exact canonical identity of a [`RequestMatrix`]: dimensions plus the bit
/// pattern of every entry. Used as a collision-free memo-cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorkloadFingerprint {
    n: usize,
    m: usize,
    bits: Vec<u64>,
}

impl RequestMatrix {
    /// Partitions processors into groups of bit-identical rows (exact
    /// `f64` equality — the hierarchical generators emit canonical rows, so
    /// exchangeable processors compare equal without any tolerance).
    pub fn groups(&self) -> RowGroups {
        let n = self.processors();
        let mut assignment = Vec::with_capacity(n);
        let mut representatives: Vec<usize> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let mut seen: std::collections::HashMap<Vec<u64>, usize> = std::collections::HashMap::new();
        for p in 0..n {
            let key: Vec<u64> = self.row(p).iter().map(|x| x.to_bits()).collect();
            let next = representatives.len();
            let g = *seen.entry(key).or_insert(next);
            if g == next && g == representatives.len() {
                representatives.push(p);
                counts.push(0);
            }
            assignment.push(g);
            counts[g] += 1;
        }
        RowGroups {
            assignment,
            representatives,
            counts,
        }
    }

    /// The matrix's exact canonical [`WorkloadFingerprint`].
    pub fn fingerprint(&self) -> WorkloadFingerprint {
        let mut bits = Vec::with_capacity(self.processors() * self.memories());
        for p in 0..self.processors() {
            bits.extend(self.row(p).iter().map(|x| x.to_bits()));
        }
        WorkloadFingerprint {
            n: self.processors(),
            m: self.memories(),
            bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HierarchicalModel, RequestModel, UniformModel};

    #[test]
    fn uniform_matrix_is_one_group() {
        let m = UniformModel::new(8, 4).unwrap().matrix();
        let g = m.groups();
        assert_eq!(g.len(), 1);
        assert_eq!(g.count(0), 8);
        assert_eq!(g.representative(0), 0);
        assert!((0..8).all(|p| g.group_of(p) == 0));
    }

    #[test]
    fn hierarchical_groups_track_clusters() {
        // 16 processors in 4 clusters of 4: each processor's row is unique
        // within its cluster only through its favorite memory, so the
        // two-level paired model yields one group per *processor* favorite —
        // 16 distinct rows. A shared-favorite construction collapses them.
        let m = HierarchicalModel::two_level_paired(16, 4, [0.6, 0.3, 0.1])
            .unwrap()
            .matrix();
        let g = m.groups();
        assert_eq!(g.len(), 16, "paired favorites make every row distinct");
        // Identical rows constructed by hand collapse to the cluster count.
        let rows: Vec<Vec<f64>> = (0..16)
            .map(|p| {
                let cluster = p / 4;
                (0..4)
                    .map(|j| if j == cluster { 0.7 } else { 0.1 })
                    .collect()
            })
            .collect();
        let m = RequestMatrix::from_rows(rows).unwrap();
        let g = m.groups();
        assert_eq!(g.len(), 4);
        assert_eq!((0..4).map(|c| g.count(c)).sum::<usize>(), 16);
        for (g_index, (rep, size)) in g.iter().enumerate() {
            assert_eq!(rep, g_index * 4);
            assert_eq!(size, 4);
        }
    }

    #[test]
    fn group_order_is_first_appearance() {
        let m = RequestMatrix::from_rows(vec![
            vec![0.5, 0.5],
            vec![1.0, 0.0],
            vec![0.5, 0.5],
            vec![0.0, 1.0],
        ])
        .unwrap();
        let g = m.groups();
        assert_eq!(g.len(), 3);
        assert_eq!(g.group_of(0), 0);
        assert_eq!(g.group_of(1), 1);
        assert_eq!(g.group_of(2), 0);
        assert_eq!(g.group_of(3), 2);
        assert_eq!(g.representative(2), 3);
    }

    #[test]
    fn fingerprint_distinguishes_matrices() {
        let a = UniformModel::new(4, 4).unwrap().matrix();
        let b = UniformModel::new(4, 4).unwrap().matrix();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = UniformModel::new(4, 2).unwrap().matrix();
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Same dimensions, different entries.
        let d = RequestMatrix::from_rows(vec![vec![0.3, 0.7]; 4]).unwrap();
        let e = RequestMatrix::from_rows(vec![vec![0.7, 0.3]; 4]).unwrap();
        assert_ne!(d.fingerprint(), e.fingerprint());
    }
}
