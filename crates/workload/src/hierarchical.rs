//! The paper's hierarchical requesting model.

use crate::{Fractions, Hierarchy, RequestModel, WorkloadError};
use serde::{Deserialize, Serialize};

/// The hierarchical requesting model of Chen & Sheu §III-A: processor `p`
/// requests memory `j` with fraction `m_{level(p, j)}`, where the level is
/// determined by the deepest subcluster `p` and `j` share in a
/// [`Hierarchy`].
///
/// # Examples
///
/// The paper's §IV two-level setting for `N = 8` (four clusters of two,
/// aggregate shares 0.6 / 0.3 / 0.1):
///
/// ```
/// use mbus_workload::{HierarchicalModel, RequestModel};
///
/// let model = HierarchicalModel::two_level_paired(8, 4, [0.6, 0.3, 0.1])?;
/// assert_eq!(model.prob(0, 0), 0.6);        // own favorite
/// assert_eq!(model.prob(0, 1), 0.3);        // cluster mate (N1 = 1)
/// assert!((model.prob(0, 5) - 0.1 / 6.0).abs() < 1e-12); // other cluster
/// # Ok::<(), mbus_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalModel {
    hierarchy: Hierarchy,
    fractions: Fractions,
}

impl HierarchicalModel {
    /// Pairs a hierarchy with validated fractions.
    pub fn new(hierarchy: Hierarchy, fractions: Fractions) -> Self {
        Self {
            hierarchy,
            fractions,
        }
    }

    /// Builds the model from per-memory fractions `m₀ … m_{L−1}`.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`Fractions::new`].
    pub fn with_fractions(hierarchy: Hierarchy, m: &[f64]) -> Result<Self, WorkloadError> {
        let fractions = Fractions::new(&hierarchy, m)?;
        Ok(Self::new(hierarchy, fractions))
    }

    /// Builds the model from aggregate per-level shares (see
    /// [`Fractions::from_aggregate_shares`]).
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of
    /// [`Fractions::from_aggregate_shares`].
    pub fn with_aggregate_shares(
        hierarchy: Hierarchy,
        shares: &[f64],
    ) -> Result<Self, WorkloadError> {
        let fractions = Fractions::from_aggregate_shares(&hierarchy, shares)?;
        Ok(Self::new(hierarchy, fractions))
    }

    /// The paper's §IV configuration: a two-level paired (`N × N`) hierarchy
    /// of `clusters` equal clusters with aggregate shares
    /// `[favorite, same_cluster, other_clusters]`.
    ///
    /// # Errors
    ///
    /// Propagates hierarchy and fraction validation errors.
    pub fn two_level_paired(
        n: usize,
        clusters: usize,
        shares: [f64; 3],
    ) -> Result<Self, WorkloadError> {
        let hierarchy = Hierarchy::two_level(n, clusters)?;
        Self::with_aggregate_shares(hierarchy, &shares)
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The validated fractions.
    pub fn fractions(&self) -> &Fractions {
        &self.fractions
    }

    /// The probability that *some particular* memory of level `i` is
    /// requested — `mᵢ` itself.
    pub fn fraction(&self, i: usize) -> f64 {
        self.fractions.get(i)
    }
}

impl RequestModel for HierarchicalModel {
    fn processors(&self) -> usize {
        self.hierarchy.processors()
    }

    fn memories(&self) -> usize {
        self.hierarchy.memories()
    }

    fn prob(&self, p: usize, j: usize) -> f64 {
        self.fractions.get(self.hierarchy.fraction_level(p, j))
    }

    fn name(&self) -> &str {
        "hierarchical"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_stochastic() {
        for n in [8, 12, 16] {
            let model = HierarchicalModel::two_level_paired(n, 4, [0.6, 0.3, 0.1]).unwrap();
            let matrix = model.matrix(); // from_rows validates stochasticity
            assert_eq!(matrix.processors(), n);
        }
    }

    #[test]
    fn paper_x_value_n8() {
        // Hand-checked against Table II: N = 8, r = 1 → X ≈ 0.74689,
        // so the crossbar row is 8X ≈ 5.98.
        let model = HierarchicalModel::two_level_paired(8, 4, [0.6, 0.3, 0.1]).unwrap();
        let x = model.matrix().memory_request_prob(0, 1.0).unwrap();
        assert!((8.0 * x - 5.98).abs() < 0.01, "8X = {}", 8.0 * x);
    }

    #[test]
    fn three_level_model() {
        // k = (2, 2, 2), shares 0.5/0.25/0.15/0.1.
        let h = Hierarchy::paired(&[2, 2, 2]).unwrap();
        let model = HierarchicalModel::with_aggregate_shares(h, &[0.5, 0.25, 0.15, 0.1]).unwrap();
        // m0 = 0.5 (1 memory), m1 = 0.25 (1), m2 = 0.15/2, m3 = 0.1/4.
        assert_eq!(model.prob(0, 0), 0.5);
        assert_eq!(model.prob(0, 1), 0.25);
        assert!((model.prob(0, 2) - 0.075).abs() < 1e-12);
        assert!((model.prob(0, 7) - 0.025).abs() < 1e-12);
        let _ = model.matrix();
    }

    #[test]
    fn shared_leaf_model() {
        // N×M: 12 processors, 8 memories, k = (2, 2, 3) with 2 per leaf.
        let h = Hierarchy::shared(&[2, 2, 3], 2).unwrap();
        let model = HierarchicalModel::with_aggregate_shares(h, &[0.6, 0.3, 0.1]).unwrap();
        assert_eq!(model.processors(), 12);
        assert_eq!(model.memories(), 8);
        // Favorites: share 0.6 over 2 leaf memories.
        assert!((model.prob(0, 0) - 0.3).abs() < 1e-12);
        assert!((model.prob(0, 1) - 0.3).abs() < 1e-12);
        let _ = model.matrix();
    }

    #[test]
    fn all_mass_on_favorite_is_degenerate_but_legal() {
        let h = Hierarchy::two_level(8, 4).unwrap();
        let model = HierarchicalModel::with_aggregate_shares(h, &[1.0, 0.0, 0.0]).unwrap();
        assert_eq!(model.prob(3, 3), 1.0);
        assert_eq!(model.prob(3, 2), 0.0);
        // With every processor on its own favorite there is no memory
        // contention at all: X_j = r for each memory.
        let x = model.matrix().memory_request_prob(5, 0.7).unwrap();
        assert!((x - 0.7).abs() < 1e-12);
    }
}
