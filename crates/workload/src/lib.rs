//! Memory-request workload models for multiple-bus multiprocessors.
//!
//! This crate implements the *hierarchical requesting model* of Chen & Sheu
//! (ICDCS 1988) together with the baseline reference models the paper
//! compares against:
//!
//! * [`HierarchicalModel`] — the paper's n-level cluster model. Processors
//!   and memories are organized into nested clusters described by a
//!   [`Hierarchy`]; a processor requests its favorite memory (or memories)
//!   with fraction `m₀` and memories in ever-larger enclosing clusters with
//!   decreasing fractions `m₁ > m₂ > …`, held by a validated [`Fractions`]
//!   vector.
//! * [`UniformModel`] — every processor requests every memory with equal
//!   probability `1/M` (the classical model, a special case the paper's
//!   tables pair with the hierarchical columns).
//! * [`FavoriteModel`] — Das & Bhuyan's favorite-memory model: one hot
//!   memory per processor with probability `α`, the rest uniform. Used by
//!   this workspace's heterogeneous-traffic extensions.
//!
//! All models implement [`RequestModel`], which exposes the row-stochastic
//! request-probability matrix ([`RequestMatrix`]). From the matrix the
//! analytical crates compute per-memory request probabilities, and the
//! simulator draws destinations with alias-method samplers
//! ([`AliasSampler`], [`WorkloadSampler`]).
//!
//! The crate also contains the paper's §III-A *motivation pipeline*: a
//! synthetic communicating-task-graph generator whose cluster assignment
//! induces hierarchical traffic ([`taskgraph`]), and a trace generator
//! ([`trace`]) for replayable workloads.
//!
//! # Examples
//!
//! The two-level configuration used throughout the paper's §IV (four
//! clusters; 0.6 / 0.3 / 0.1 aggregate shares):
//!
//! ```
//! use mbus_workload::{HierarchicalModel, RequestModel};
//!
//! let model = HierarchicalModel::two_level_paired(16, 4, [0.6, 0.3, 0.1])?;
//! let matrix = model.matrix();
//! // Favorite memory: fraction m0 = 0.6.
//! assert!((matrix.prob(0, 0) - 0.6).abs() < 1e-12);
//! // Same cluster (memories 1..4): 0.3 split over 3 modules.
//! assert!((matrix.prob(0, 1) - 0.1).abs() < 1e-12);
//! // Other clusters: 0.1 split over 12 modules.
//! assert!((matrix.prob(0, 15) - 0.1 / 12.0).abs() < 1e-12);
//! # Ok::<(), mbus_workload::WorkloadError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod favorite;
mod fractions;
mod groups;
mod hierarchical;
mod hierarchy;
mod matrix;
mod model;
mod sampler;
pub mod taskgraph;
pub mod trace;
mod uniform;

pub use error::WorkloadError;
pub use favorite::FavoriteModel;
pub use fractions::Fractions;
pub use groups::{RowGroups, WorkloadFingerprint};
pub use hierarchical::HierarchicalModel;
pub use hierarchy::{Hierarchy, LeafKind};
pub use matrix::RequestMatrix;
pub use model::RequestModel;
pub use sampler::{AliasSampler, WorkloadSampler};
pub use uniform::UniformModel;
