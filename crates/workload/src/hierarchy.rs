//! The n-level cluster hierarchy underlying the hierarchical requesting
//! model (paper §III-A).

use crate::WorkloadError;
use serde::{Deserialize, Serialize};

/// How the innermost (nth-level) subclusters pair processors with memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LeafKind {
    /// The paper's `N × N × B` setting: each leaf subcluster holds `kₙ`
    /// *pairs* `(Pᵢ, MMᵢ)`; every processor has exactly one favorite memory.
    /// A hierarchy of `n` levels then has `n + 1` request fractions
    /// `m₀ … mₙ`.
    Paired,
    /// The paper's `N × M × B` setting: each leaf subcluster holds `kₙ`
    /// processors sharing `kₙ′` favorite memories, each requested with the
    /// same fraction `m₀`. A hierarchy of `n` levels then has `n` request
    /// fractions `m₀ … mₙ₋₁`.
    Shared {
        /// Favorite memories per leaf subcluster (`kₙ′ ≥ 1`).
        memories_per_leaf: usize,
    },
}

/// An n-level hierarchy of processor/memory clusters: `N = k₁·k₂⋯kₙ`
/// processors, partitioned into `k₁` clusters of `k₂` subclusters each, and
/// so on.
///
/// The hierarchy answers two questions for the request models:
///
/// 1. Which fraction `mᵢ` governs processor `p`'s requests to memory `j`
///    ([`Hierarchy::fraction_level`])?
/// 2. How many memories does each processor hit with fraction `mᵢ`
///    ([`Hierarchy::target_counts`], the paper's `Nᵢ` of formula (1)), and
///    how many processors hit each memory with fraction `mᵢ`
///    ([`Hierarchy::requester_counts`])?
///
/// # Examples
///
/// ```
/// use mbus_workload::Hierarchy;
///
/// // Three-level 12-processor hierarchy: k = (3, 2, 2).
/// let h = Hierarchy::paired(&[3, 2, 2])?;
/// assert_eq!(h.processors(), 12);
/// // Paper formula (1): N0=1, N1=k3-1=1, N2=(k2-1)k3=2, N3=(k1-1)k2k3=8.
/// assert_eq!(h.target_counts(), vec![1, 1, 2, 8]);
/// # Ok::<(), mbus_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Hierarchy {
    /// Branching factors `k₁ … kₙ` (outermost first).
    ks: Vec<usize>,
    leaf: LeafKind,
}

impl Hierarchy {
    /// A paired (`N × N`) hierarchy with branching factors `k₁ … kₙ`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyHierarchy`] for an empty factor list and
    /// [`WorkloadError::ZeroBranchingFactor`] if any `kᵢ = 0`.
    pub fn paired(ks: &[usize]) -> Result<Self, WorkloadError> {
        Self::validate(ks)?;
        Ok(Self {
            ks: ks.to_vec(),
            leaf: LeafKind::Paired,
        })
    }

    /// A shared-leaf (`N × M`) hierarchy: branching factors `k₁ … kₙ` on the
    /// processor side, with `memories_per_leaf = kₙ′` favorite memories in
    /// each leaf subcluster.
    ///
    /// # Errors
    ///
    /// Same as [`Hierarchy::paired`], plus
    /// [`WorkloadError::ZeroDimension`] when `memories_per_leaf == 0`.
    pub fn shared(ks: &[usize], memories_per_leaf: usize) -> Result<Self, WorkloadError> {
        Self::validate(ks)?;
        if memories_per_leaf == 0 {
            return Err(WorkloadError::ZeroDimension {
                dimension: "memories per leaf",
            });
        }
        Ok(Self {
            ks: ks.to_vec(),
            leaf: LeafKind::Shared { memories_per_leaf },
        })
    }

    /// The paper's §IV configuration: a two-level paired hierarchy of
    /// `clusters` equal clusters over `n` processors (`k₁ = clusters`,
    /// `k₂ = n / clusters`).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::IndivisibleClusters`] when `clusters` does
    /// not divide `n`, plus the [`Hierarchy::paired`] errors.
    pub fn two_level(n: usize, clusters: usize) -> Result<Self, WorkloadError> {
        if clusters == 0 || n == 0 {
            return Err(WorkloadError::EmptyHierarchy);
        }
        if n % clusters != 0 {
            return Err(WorkloadError::IndivisibleClusters {
                processors: n,
                clusters,
            });
        }
        Self::paired(&[clusters, n / clusters])
    }

    fn validate(ks: &[usize]) -> Result<(), WorkloadError> {
        if ks.is_empty() {
            return Err(WorkloadError::EmptyHierarchy);
        }
        for (i, &k) in ks.iter().enumerate() {
            if k == 0 {
                return Err(WorkloadError::ZeroBranchingFactor { level: i + 1 });
            }
        }
        Ok(())
    }

    /// Branching factors `k₁ … kₙ`.
    pub fn branching_factors(&self) -> &[usize] {
        &self.ks
    }

    /// Leaf kind (paired or shared).
    pub fn leaf_kind(&self) -> LeafKind {
        self.leaf
    }

    /// Number of hierarchy levels `n`.
    pub fn levels(&self) -> usize {
        self.ks.len()
    }

    /// Total number of processors `N = k₁⋯kₙ`.
    pub fn processors(&self) -> usize {
        self.ks.iter().product()
    }

    /// Total number of memories: `N` for paired leaves,
    /// `k₁⋯kₙ₋₁·kₙ′` for shared leaves.
    pub fn memories(&self) -> usize {
        match self.leaf {
            LeafKind::Paired => self.processors(),
            LeafKind::Shared { memories_per_leaf } => {
                let leaves: usize = self.ks[..self.ks.len() - 1].iter().product();
                leaves * memories_per_leaf
            }
        }
    }

    /// Number of request fractions the model needs: `n + 1` for paired
    /// leaves (`m₀ … mₙ`), `n` for shared leaves (`m₀ … mₙ₋₁`).
    pub fn fraction_count(&self) -> usize {
        match self.leaf {
            LeafKind::Paired => self.levels() + 1,
            LeafKind::Shared { .. } => self.levels(),
        }
    }

    /// Processors per leaf subcluster (`kₙ`).
    pub fn processors_per_leaf(&self) -> usize {
        // lint:allow(no_panic, Hierarchy constructors reject empty level lists)
        *self.ks.last().expect("validated non-empty")
    }

    /// Memories per leaf subcluster (`kₙ` for paired, `kₙ′` for shared).
    pub fn memories_per_leaf(&self) -> usize {
        match self.leaf {
            LeafKind::Paired => self.processors_per_leaf(),
            LeafKind::Shared { memories_per_leaf } => memories_per_leaf,
        }
    }

    /// Number of leaf subclusters (`k₁⋯kₙ₋₁`).
    pub fn leaf_count(&self) -> usize {
        self.ks[..self.ks.len() - 1].iter().product()
    }

    /// The leaf subcluster containing processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ≥ N`.
    pub fn leaf_of_processor(&self, p: usize) -> usize {
        assert!(p < self.processors(), "processor {p} out of range");
        p / self.processors_per_leaf()
    }

    /// The leaf subcluster containing memory `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ M`.
    pub fn leaf_of_memory(&self, j: usize) -> usize {
        assert!(j < self.memories(), "memory {j} out of range");
        j / self.memories_per_leaf()
    }

    /// The fraction index `i` such that processor `p` requests memory `j`
    /// with fraction `mᵢ`.
    ///
    /// For paired leaves: `0` iff `j` is `p`'s own favorite; otherwise
    /// `n − d` where `d` is the deepest hierarchy level at which `p` and `j`
    /// share a subcluster. For shared leaves: `0` iff `j` lies in `p`'s leaf;
    /// otherwise `(n − 1) − d` over the first `n − 1` levels.
    ///
    /// # Panics
    ///
    /// Panics if `p ≥ N` or `j ≥ M`.
    pub fn fraction_level(&self, p: usize, j: usize) -> usize {
        assert!(p < self.processors(), "processor {p} out of range");
        assert!(j < self.memories(), "memory {j} out of range");
        match self.leaf {
            LeafKind::Paired => {
                if p == j {
                    return 0;
                }
                let n = self.levels();
                n - self.shared_depth(p, j)
            }
            LeafKind::Shared { .. } => {
                if self.leaf_of_processor(p) == self.leaf_of_memory(j) {
                    return 0;
                }
                let n = self.levels();
                (n - 1) - self.shared_leaf_depth(self.leaf_of_processor(p), self.leaf_of_memory(j))
            }
        }
    }

    /// Deepest level (0 ..= n) at which processor index `p` and *paired*
    /// memory index `j` fall in the same subcluster. Level 0 is the whole
    /// network; level `n` means `p == j`.
    fn shared_depth(&self, p: usize, j: usize) -> usize {
        // Walk from the outermost partition inwards. At level d the
        // subcluster size is k_{d+1}·…·kₙ.
        let mut size = self.processors();
        let mut depth = 0;
        for &k in &self.ks {
            size /= k;
            if p / size == j / size {
                depth += 1;
                if size == 1 {
                    break;
                }
            } else {
                break;
            }
        }
        depth
    }

    /// Deepest level (0 ..= n−1) at which two *leaf indices* share a
    /// subcluster, comparing the first n−1 branching levels.
    fn shared_leaf_depth(&self, leaf_a: usize, leaf_b: usize) -> usize {
        let mut size = self.leaf_count();
        let mut depth = 0;
        for &k in &self.ks[..self.ks.len() - 1] {
            size /= k;
            if leaf_a / size == leaf_b / size {
                depth += 1;
                if size == 1 {
                    break;
                }
            } else {
                break;
            }
        }
        depth
    }

    /// The paper's `Nᵢ` (formula (1)): the number of memories a processor
    /// requests with fraction `mᵢ`, for `i = 0 … fraction_count−1`.
    ///
    /// Paired: `N₀ = 1`, `Nᵢ = (k_{n−i+1} − 1)·k_{n−i+2}⋯kₙ`. Shared:
    /// `N₀ = kₙ′`, `Nᵢ = (k_{n−i} − 1)·k_{n−i+1}⋯k_{n−1}·kₙ′`.
    pub fn target_counts(&self) -> Vec<usize> {
        let n = self.levels();
        match self.leaf {
            LeafKind::Paired => {
                let mut counts = Vec::with_capacity(n + 1);
                counts.push(1);
                // suffix = k_{n-i+2}·…·kₙ for the current i.
                let mut suffix = 1usize;
                for i in 1..=n {
                    let k = self.ks[n - i];
                    counts.push((k - 1) * suffix);
                    suffix *= k;
                }
                counts
            }
            LeafKind::Shared { memories_per_leaf } => {
                let mut counts = Vec::with_capacity(n);
                counts.push(memories_per_leaf);
                let mut suffix = memories_per_leaf;
                for i in 1..n {
                    let k = self.ks[n - 1 - i];
                    counts.push((k - 1) * suffix);
                    suffix *= k;
                }
                counts
            }
        }
    }

    /// The number of processors that request a given memory with fraction
    /// `mᵢ` — the processor-side mirror of [`Hierarchy::target_counts`],
    /// needed by the analysis' equation (2).
    ///
    /// For paired leaves the hierarchy is symmetric, so the counts coincide
    /// with `target_counts`. For shared leaves `P₀ = kₙ` (all leaf
    /// processors) and `Pᵢ = (k_{n−i} − 1)·k_{n−i+1}⋯kₙ`.
    pub fn requester_counts(&self) -> Vec<usize> {
        let n = self.levels();
        match self.leaf {
            LeafKind::Paired => self.target_counts(),
            LeafKind::Shared { .. } => {
                let per_leaf = self.processors_per_leaf();
                let mut counts = Vec::with_capacity(n);
                counts.push(per_leaf);
                let mut suffix = per_leaf;
                for i in 1..n {
                    let k = self.ks[n - 1 - i];
                    counts.push((k - 1) * suffix);
                    suffix *= k;
                }
                counts
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paired_counts_match_paper_formula_one() {
        // Paper example: three-level, N = k1 k2 k3.
        let h = Hierarchy::paired(&[4, 3, 2]).unwrap();
        assert_eq!(h.processors(), 24);
        assert_eq!(h.memories(), 24);
        assert_eq!(h.fraction_count(), 4);
        // N0=1, N1=k3-1=1, N2=(k2-1)k3=4, N3=(k1-1)k2k3=18.
        assert_eq!(h.target_counts(), vec![1, 1, 4, 18]);
        assert_eq!(h.requester_counts(), vec![1, 1, 4, 18]);
        // Counts partition all N memories.
        assert_eq!(h.target_counts().iter().sum::<usize>(), 24);
    }

    #[test]
    fn two_level_paper_configuration() {
        let h = Hierarchy::two_level(16, 4).unwrap();
        assert_eq!(h.branching_factors(), &[4, 4]);
        assert_eq!(h.target_counts(), vec![1, 3, 12]);
    }

    #[test]
    fn two_level_must_divide() {
        assert_eq!(
            Hierarchy::two_level(10, 4).unwrap_err(),
            WorkloadError::IndivisibleClusters {
                processors: 10,
                clusters: 4
            }
        );
    }

    #[test]
    fn rejects_invalid_factors() {
        assert_eq!(
            Hierarchy::paired(&[]).unwrap_err(),
            WorkloadError::EmptyHierarchy
        );
        assert_eq!(
            Hierarchy::paired(&[3, 0]).unwrap_err(),
            WorkloadError::ZeroBranchingFactor { level: 2 }
        );
        assert!(matches!(
            Hierarchy::shared(&[2, 2], 0).unwrap_err(),
            WorkloadError::ZeroDimension { .. }
        ));
    }

    #[test]
    fn paired_fraction_levels_two_level() {
        // 8 processors in 4 clusters of 2.
        let h = Hierarchy::two_level(8, 4).unwrap();
        // Own favorite.
        assert_eq!(h.fraction_level(0, 0), 0);
        // Same cluster, other member.
        assert_eq!(h.fraction_level(0, 1), 1);
        // Other cluster.
        assert_eq!(h.fraction_level(0, 2), 2);
        assert_eq!(h.fraction_level(0, 7), 2);
        assert_eq!(h.fraction_level(7, 6), 1);
    }

    #[test]
    fn paired_fraction_levels_three_level() {
        // k = (2, 2, 2): leaves {0,1},{2,3},{4,5},{6,7}; clusters {0..4},{4..8}.
        let h = Hierarchy::paired(&[2, 2, 2]).unwrap();
        assert_eq!(h.fraction_level(0, 0), 0);
        assert_eq!(h.fraction_level(0, 1), 1); // same leaf
        assert_eq!(h.fraction_level(0, 3), 2); // same cluster, other leaf
        assert_eq!(h.fraction_level(0, 5), 3); // other cluster
                                               // Level counts seen from any processor match target_counts.
        let counts = h.target_counts();
        for p in 0..8 {
            let mut seen = vec![0usize; 4];
            for j in 0..8 {
                seen[h.fraction_level(p, j)] += 1;
            }
            assert_eq!(seen, counts, "processor {p}");
        }
    }

    #[test]
    fn shared_leaf_three_level() {
        // Paper's N×M example: k = (k1, k2, k3) with k3' memories per leaf.
        // Take k = (2, 2, 3), k3' = 2: N = 12, M = 8.
        let h = Hierarchy::shared(&[2, 2, 3], 2).unwrap();
        assert_eq!(h.processors(), 12);
        assert_eq!(h.memories(), 8);
        assert_eq!(h.fraction_count(), 3);
        // N0 = k3' = 2, N1 = (k2-1)k3' = 2, N2 = (k1-1)k2k3' = 4.
        assert_eq!(h.target_counts(), vec![2, 2, 4]);
        // P0 = k3 = 3, P1 = (k2-1)k3 = 3, P2 = (k1-1)k2k3 = 6.
        assert_eq!(h.requester_counts(), vec![3, 3, 6]);
        // Processor 0 lives in leaf 0 (memories 0, 1 are its favorites).
        assert_eq!(h.fraction_level(0, 0), 0);
        assert_eq!(h.fraction_level(0, 1), 0);
        // Memory in the sibling leaf within the same cluster.
        assert_eq!(h.fraction_level(0, 2), 1);
        // Memory in the other cluster.
        assert_eq!(h.fraction_level(0, 6), 2);
        // Target counts hold per processor.
        for p in 0..12 {
            let mut seen = vec![0usize; 3];
            for j in 0..8 {
                seen[h.fraction_level(p, j)] += 1;
            }
            assert_eq!(seen, vec![2, 2, 4], "processor {p}");
        }
        // Requester counts hold per memory.
        for j in 0..8 {
            let mut seen = vec![0usize; 3];
            for p in 0..12 {
                seen[h.fraction_level(p, j)] += 1;
            }
            assert_eq!(seen, vec![3, 3, 6], "memory {j}");
        }
    }

    #[test]
    fn single_level_degenerates_gracefully() {
        // One level of k processors: favorites plus "everything else".
        let h = Hierarchy::paired(&[4]).unwrap();
        assert_eq!(h.fraction_count(), 2);
        assert_eq!(h.target_counts(), vec![1, 3]);
        assert_eq!(h.fraction_level(2, 2), 0);
        assert_eq!(h.fraction_level(2, 0), 1);
    }

    #[test]
    fn leaf_lookup() {
        let h = Hierarchy::paired(&[2, 3]).unwrap();
        assert_eq!(h.leaf_count(), 2);
        assert_eq!(h.leaf_of_processor(2), 0);
        assert_eq!(h.leaf_of_processor(3), 1);
        assert_eq!(h.leaf_of_memory(5), 1);
    }
}
