//! Error type for workload construction and validation.

/// Error returned when a request model is described inconsistently.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A hierarchy needs at least one level, and every `kᵢ ≥ 1` with the
    /// total processor count at least 1.
    EmptyHierarchy,
    /// A hierarchy branching factor was zero.
    ZeroBranchingFactor {
        /// The level (1-based, like the paper's `k₁ … kₙ`) with `kᵢ = 0`.
        level: usize,
    },
    /// The requested processor count cannot be factored into the requested
    /// number of clusters.
    IndivisibleClusters {
        /// Total number of processors `N`.
        processors: usize,
        /// Requested first-level cluster count `k₁`.
        clusters: usize,
    },
    /// The fraction vector has the wrong number of levels for the hierarchy.
    FractionCountMismatch {
        /// Fractions provided.
        got: usize,
        /// Fractions required (`n + 1` for paired leaves, `n` for shared).
        expected: usize,
    },
    /// A fraction was negative or non-finite.
    InvalidFraction {
        /// Index `i` of the offending `mᵢ`.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The fractions do not satisfy the paper's normalization
    /// `Σ mᵢ·Nᵢ = 1`.
    NotNormalized {
        /// The actual sum `Σ mᵢ·Nᵢ`.
        sum: f64,
    },
    /// Aggregate shares must sum to 1 (each share is then split uniformly
    /// over its level's memories).
    SharesNotNormalized {
        /// The actual sum of the provided shares.
        sum: f64,
    },
    /// A probability parameter (e.g. the favorite-memory weight `α` or the
    /// request rate `r`) was outside `[0, 1]`.
    InvalidProbability {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A request matrix row does not sum to 1.
    RowNotStochastic {
        /// The processor whose row is invalid.
        processor: usize,
        /// The row sum found.
        sum: f64,
    },
    /// A matrix entry was negative or non-finite.
    InvalidMatrixEntry {
        /// Row (processor).
        processor: usize,
        /// Column (memory).
        memory: usize,
        /// The offending value.
        value: f64,
    },
    /// A dimension (processors/memories/tasks) was zero.
    ZeroDimension {
        /// Which dimension was zero.
        dimension: &'static str,
    },
    /// An index was out of range.
    IndexOutOfRange {
        /// What kind of index.
        kind: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive upper bound.
        len: usize,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyHierarchy => write!(f, "hierarchy must have at least one level"),
            Self::ZeroBranchingFactor { level } => {
                write!(f, "hierarchy branching factor k_{level} must be positive")
            }
            Self::IndivisibleClusters {
                processors,
                clusters,
            } => write!(
                f,
                "{processors} processors cannot be split into {clusters} equal clusters"
            ),
            Self::FractionCountMismatch { got, expected } => write!(
                f,
                "fraction vector has {got} entries, hierarchy requires {expected}"
            ),
            Self::InvalidFraction { index, value } => {
                write!(
                    f,
                    "fraction m_{index} = {value} must be finite and non-negative"
                )
            }
            Self::NotNormalized { sum } => {
                write!(f, "fractions must satisfy sum_i m_i*N_i = 1, got {sum}")
            }
            Self::SharesNotNormalized { sum } => {
                write!(f, "aggregate level shares must sum to 1, got {sum}")
            }
            Self::InvalidProbability { name, value } => {
                write!(f, "{name} = {value} must lie in [0, 1]")
            }
            Self::RowNotStochastic { processor, sum } => write!(
                f,
                "request probabilities of processor {processor} sum to {sum}, expected 1"
            ),
            Self::InvalidMatrixEntry {
                processor,
                memory,
                value,
            } => write!(
                f,
                "request probability ({processor}, {memory}) = {value} is invalid"
            ),
            Self::ZeroDimension { dimension } => {
                write!(f, "number of {dimension} must be positive")
            }
            Self::IndexOutOfRange { kind, index, len } => {
                write!(f, "{kind} index {index} out of range ({len})")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}
