//! The common interface implemented by every request model.

use crate::RequestMatrix;

/// A memory-reference model: where does each processor send its requests?
///
/// Implementations must be *consistent*: [`RequestModel::matrix`] returns a
/// row-stochastic `N × M` matrix whose entry `(p, j)` equals
/// [`RequestModel::prob`]`(p, j)`.
///
/// The trait is object-safe, so heterogeneous collections of models (e.g.
/// the hierarchical/uniform pairs in the paper's tables) can be processed
/// uniformly.
pub trait RequestModel {
    /// Number of processors `N`.
    fn processors(&self) -> usize;

    /// Number of memory modules `M`.
    fn memories(&self) -> usize;

    /// Probability that processor `p`'s request (given one is issued)
    /// targets memory `j`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `p ≥ N` or `j ≥ M`.
    fn prob(&self, p: usize, j: usize) -> f64;

    /// A short human-readable name for reports ("hierarchical", "uniform",
    /// …).
    fn name(&self) -> &str;

    /// Materializes the full request matrix.
    fn matrix(&self) -> RequestMatrix {
        let rows = (0..self.processors())
            .map(|p| (0..self.memories()).map(|j| self.prob(p, j)).collect())
            .collect();
        // lint:allow(no_panic, the RequestModel contract requires row-stochastic prob() rows; all workspace models validate at construction)
        RequestMatrix::from_rows(rows).expect("request models must produce row-stochastic matrices")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FavoriteModel, HierarchicalModel, UniformModel};

    #[test]
    fn trait_is_object_safe_and_consistent() {
        let models: Vec<Box<dyn RequestModel>> = vec![
            Box::new(UniformModel::new(4, 6).unwrap()),
            Box::new(FavoriteModel::new(4, 4, 0.5).unwrap()),
            Box::new(HierarchicalModel::two_level_paired(8, 4, [0.6, 0.3, 0.1]).unwrap()),
        ];
        for model in &models {
            let matrix = model.matrix();
            assert_eq!(matrix.processors(), model.processors());
            assert_eq!(matrix.memories(), model.memories());
            for p in 0..model.processors() {
                for j in 0..model.memories() {
                    assert_eq!(matrix.prob(p, j), model.prob(p, j), "{}", model.name());
                }
            }
        }
    }
}
