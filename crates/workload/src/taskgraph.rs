//! The §III-A motivation pipeline: communicating tasks → cluster assignment
//! → hierarchical traffic.
//!
//! The paper motivates its request model by how multiprocessor jobs are
//! scheduled: "the task assignment procedure should assign those tasks that
//! have large amounts of communications to the same processor or to a
//! cluster of processors with low communication cost", which makes
//! intra-cluster memory traffic dominate. This module reproduces that
//! pipeline end to end:
//!
//! 1. [`TaskGraph::synthetic`] generates a job of communicating task groups
//!    (heavy intra-group, light inter-group edges);
//! 2. [`Assignment::locality_aware`] places each group on one leaf
//!    subcluster of a [`Hierarchy`] (and [`Assignment::scattered`] is the
//!    locality-oblivious control);
//! 3. [`derived_shares`] measures the per-level traffic the placement
//!    induces, and [`derived_model`] turns it into a fitted
//!    [`HierarchicalModel`].
//!
//! The `cluster_workload` example walks the full pipeline.

use crate::{Fractions, HierarchicalModel, Hierarchy, WorkloadError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An undirected weighted communication graph over tasks, with a group label
/// per task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    tasks: usize,
    /// Row-major `tasks × tasks` symmetric weight matrix, zero diagonal.
    weights: Vec<f64>,
    /// Group label per task.
    groups: Vec<usize>,
}

impl TaskGraph {
    /// Generates a synthetic job of `groups × tasks_per_group` tasks where
    /// task pairs inside a group communicate with mean weight `intra_mean`
    /// and pairs across groups with mean weight `inter_mean` (each weight
    /// jittered uniformly by ±50%).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ZeroDimension`] for zero counts and
    /// [`WorkloadError::InvalidFraction`] for negative/non-finite means.
    pub fn synthetic<R: Rng + ?Sized>(
        groups: usize,
        tasks_per_group: usize,
        intra_mean: f64,
        inter_mean: f64,
        rng: &mut R,
    ) -> Result<Self, WorkloadError> {
        if groups == 0 || tasks_per_group == 0 {
            return Err(WorkloadError::ZeroDimension { dimension: "tasks" });
        }
        for (index, mean) in [intra_mean, inter_mean].into_iter().enumerate() {
            if !mean.is_finite() || mean < 0.0 {
                return Err(WorkloadError::InvalidFraction { index, value: mean });
            }
        }
        let tasks = groups * tasks_per_group;
        let group_of = |t: usize| t / tasks_per_group;
        let mut weights = vec![0.0; tasks * tasks];
        for a in 0..tasks {
            for b in (a + 1)..tasks {
                let mean = if group_of(a) == group_of(b) {
                    intra_mean
                } else {
                    inter_mean
                };
                let w = mean * (0.5 + rng.random::<f64>());
                weights[a * tasks + b] = w;
                weights[b * tasks + a] = w;
            }
        }
        Ok(Self {
            tasks,
            weights,
            groups: (0..tasks).map(group_of).collect(),
        })
    }

    /// Number of tasks.
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Number of distinct groups.
    pub fn group_count(&self) -> usize {
        self.groups.iter().copied().max().map_or(0, |g| g + 1)
    }

    /// Group label of task `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn group_of(&self, t: usize) -> usize {
        self.groups[t]
    }

    /// Communication weight between tasks `a` and `b` (symmetric, zero on
    /// the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn weight(&self, a: usize, b: usize) -> f64 {
        assert!(a < self.tasks && b < self.tasks, "task index out of range");
        self.weights[a * self.tasks + b]
    }

    /// Sum of all pairwise weights.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum::<f64>() / 2.0
    }
}

/// A placement of tasks onto processors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    task_to_processor: Vec<usize>,
    processors: usize,
}

impl Assignment {
    /// Places each task group on one leaf subcluster of `hierarchy`
    /// (group `g` → leaf `g mod leaf_count`), spreading the group's tasks
    /// round-robin over the leaf's processors. This is the "good" placement
    /// the paper's model assumes.
    pub fn locality_aware(graph: &TaskGraph, hierarchy: &Hierarchy) -> Self {
        let per_leaf = hierarchy.processors_per_leaf();
        let leaves = hierarchy.leaf_count();
        let mut within_group = vec![0usize; graph.group_count()];
        let task_to_processor = (0..graph.tasks())
            .map(|t| {
                let g = graph.group_of(t);
                let slot = within_group[g];
                within_group[g] += 1;
                let leaf = g % leaves;
                leaf * per_leaf + slot % per_leaf
            })
            .collect();
        Self {
            task_to_processor,
            processors: hierarchy.processors(),
        }
    }

    /// Scatters each group's tasks across *different* processors (member
    /// `i` of group `g` lands on processor `(g + i·G) mod N`), deliberately
    /// destroying locality — the locality-oblivious control.
    pub fn scattered(graph: &TaskGraph, processors: usize) -> Self {
        let group_count = graph.group_count().max(1);
        let mut member_index = vec![0usize; group_count];
        let task_to_processor = (0..graph.tasks())
            .map(|t| {
                let g = graph.group_of(t);
                let i = member_index[g];
                member_index[g] += 1;
                (g + i * group_count) % processors
            })
            .collect();
        Self {
            task_to_processor,
            processors,
        }
    }

    /// Processor hosting task `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn processor_of(&self, t: usize) -> usize {
        self.task_to_processor[t]
    }

    /// Number of processors the assignment targets.
    pub fn processors(&self) -> usize {
        self.processors
    }
}

/// Measures the aggregate per-level traffic shares a placement induces.
///
/// Each communicating task pair `(a, b)` makes the processor of `a` access
/// the favorite memory of the processor of `b` (and vice versa) in
/// proportion to the edge weight; a task also accesses its own processor's
/// favorite memory with its total edge weight (reading its own working set).
/// The returned vector has one entry per hierarchy fraction level, summing
/// to 1.
///
/// # Errors
///
/// Returns [`WorkloadError::IndexOutOfRange`] if the assignment targets a
/// different processor count than the hierarchy provides, and
/// [`WorkloadError::ZeroDimension`] if the graph has no communication at
/// all.
pub fn derived_shares(
    graph: &TaskGraph,
    assignment: &Assignment,
    hierarchy: &Hierarchy,
) -> Result<Vec<f64>, WorkloadError> {
    if assignment.processors() != hierarchy.processors() {
        return Err(WorkloadError::IndexOutOfRange {
            kind: "processor",
            index: assignment.processors(),
            len: hierarchy.processors(),
        });
    }
    let memories_per_leaf = hierarchy.memories_per_leaf();
    let per_leaf = hierarchy.processors_per_leaf();
    // The "home memory" of processor p: the memory sharing p's slot in its
    // leaf (identity for paired hierarchies).
    let home_memory = |p: usize| {
        let leaf = hierarchy.leaf_of_processor(p);
        leaf * memories_per_leaf + (p % per_leaf) % memories_per_leaf
    };
    let mut shares = vec![0.0; hierarchy.fraction_count()];
    for a in 0..graph.tasks() {
        let pa = assignment.processor_of(a);
        for b in 0..graph.tasks() {
            if a == b {
                continue;
            }
            let w = graph.weight(a, b);
            if w == 0.0 {
                continue;
            }
            // a's processor reads b's working set…
            shares[hierarchy.fraction_level(pa, home_memory(assignment.processor_of(b)))] += w;
            // …and touches its own working set while doing so.
            shares[hierarchy.fraction_level(pa, home_memory(pa))] += w;
        }
    }
    let total: f64 = shares.iter().sum();
    if total <= 0.0 {
        return Err(WorkloadError::ZeroDimension {
            dimension: "task communication",
        });
    }
    for s in &mut shares {
        *s /= total;
    }
    Ok(shares)
}

/// Fits a [`HierarchicalModel`] to the traffic a placement induces: the
/// measured [`derived_shares`] are spread uniformly within each level.
///
/// # Errors
///
/// Propagates [`derived_shares`] and fraction-validation errors.
pub fn derived_model(
    graph: &TaskGraph,
    assignment: &Assignment,
    hierarchy: &Hierarchy,
) -> Result<HierarchicalModel, WorkloadError> {
    let shares = derived_shares(graph, assignment, hierarchy)?;
    let fractions = Fractions::from_aggregate_shares(hierarchy, &shares)?;
    Ok(HierarchicalModel::new(hierarchy.clone(), fractions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph(rng_seed: u64) -> TaskGraph {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        TaskGraph::synthetic(4, 4, 10.0, 0.5, &mut rng).unwrap()
    }

    #[test]
    fn synthetic_weights_reflect_groups() {
        let g = graph(1);
        assert_eq!(g.tasks(), 16);
        assert_eq!(g.group_count(), 4);
        // Intra-group edges are much heavier on average.
        let (mut intra, mut inter, mut n_intra, mut n_inter) = (0.0, 0.0, 0, 0);
        for a in 0..16 {
            for b in (a + 1)..16 {
                if g.group_of(a) == g.group_of(b) {
                    intra += g.weight(a, b);
                    n_intra += 1;
                } else {
                    inter += g.weight(a, b);
                    n_inter += 1;
                }
            }
        }
        assert!(intra / n_intra as f64 > 5.0 * (inter / n_inter as f64));
        assert!(g.total_weight() > 0.0);
        // Symmetry and zero diagonal.
        assert_eq!(g.weight(2, 9), g.weight(9, 2));
        assert_eq!(g.weight(3, 3), 0.0);
    }

    #[test]
    fn synthetic_validation() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(TaskGraph::synthetic(0, 3, 1.0, 1.0, &mut rng).is_err());
        assert!(TaskGraph::synthetic(2, 0, 1.0, 1.0, &mut rng).is_err());
        assert!(TaskGraph::synthetic(2, 2, -1.0, 1.0, &mut rng).is_err());
    }

    #[test]
    fn locality_aware_keeps_groups_on_leaves() {
        let g = graph(3);
        let h = Hierarchy::two_level(16, 4).unwrap();
        let a = Assignment::locality_aware(&g, &h);
        for t in 0..g.tasks() {
            let leaf = h.leaf_of_processor(a.processor_of(t));
            assert_eq!(leaf, g.group_of(t) % 4, "task {t}");
        }
    }

    #[test]
    fn locality_aware_induces_decreasing_shares() {
        let g = graph(4);
        let h = Hierarchy::two_level(16, 4).unwrap();
        let local = Assignment::locality_aware(&g, &h);
        let shares = derived_shares(&g, &local, &h).unwrap();
        assert_eq!(shares.len(), 3);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // The hallmark of the hierarchical model: local levels dominate.
        assert!(shares[0] + shares[1] > shares[2]);
        // And the fitted model validates.
        let model = derived_model(&g, &local, &h).unwrap();
        assert!(model.fraction(0) > model.fraction(2));
    }

    #[test]
    fn scattered_assignment_loses_locality() {
        let g = graph(5);
        let h = Hierarchy::two_level(16, 4).unwrap();
        let local = derived_shares(&g, &Assignment::locality_aware(&g, &h), &h).unwrap();
        let scattered = derived_shares(&g, &Assignment::scattered(&g, 16), &h).unwrap();
        // Scattering pushes traffic out to the remote level.
        assert!(scattered[2] > local[2]);
    }

    #[test]
    fn derived_shares_checks_processor_count() {
        let g = graph(6);
        let h = Hierarchy::two_level(8, 4).unwrap();
        let wrong = Assignment::scattered(&g, 16);
        assert!(derived_shares(&g, &wrong, &h).is_err());
    }
}
