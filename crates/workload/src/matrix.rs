//! Row-stochastic request-probability matrices.

use crate::WorkloadError;
use serde::{Deserialize, Serialize};

/// Tolerance for row-stochasticity validation.
const ROW_SUM_TOL: f64 = 1e-9;

/// An `N × M` row-stochastic matrix: entry `(p, j)` is the probability that
/// processor `p`'s request (given one is issued this cycle) targets memory
/// `j`.
///
/// This is the lingua franca between workload models, the analytical crates
/// (which derive per-memory request probabilities from it), and the
/// simulator (which samples destinations from its rows).
///
/// # Examples
///
/// ```
/// use mbus_workload::RequestMatrix;
///
/// let m = RequestMatrix::from_rows(vec![
///     vec![0.5, 0.5],
///     vec![0.25, 0.75],
/// ])?;
/// assert_eq!(m.processors(), 2);
/// assert_eq!(m.memories(), 2);
/// // P(memory 1 requested) with request rate r = 1:
/// // 1 − (1 − 0.5)(1 − 0.75) = 0.875.
/// assert!((m.memory_request_prob(1, 1.0)? - 0.875).abs() < 1e-12);
/// # Ok::<(), mbus_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestMatrix {
    n: usize,
    m: usize,
    /// Row-major storage, `n * m` entries.
    data: Vec<f64>,
}

impl RequestMatrix {
    /// Builds and validates a matrix from rows.
    ///
    /// # Errors
    ///
    /// * empty matrix → [`WorkloadError::ZeroDimension`];
    /// * ragged rows → [`WorkloadError::RowNotStochastic`] is *not* used for
    ///   this; ragged input is a programming error and panics;
    /// * negative/non-finite entries → [`WorkloadError::InvalidMatrixEntry`];
    /// * rows not summing to 1 → [`WorkloadError::RowNotStochastic`].
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, WorkloadError> {
        if rows.is_empty() {
            return Err(WorkloadError::ZeroDimension {
                dimension: "processors",
            });
        }
        let m = rows[0].len();
        if m == 0 {
            return Err(WorkloadError::ZeroDimension {
                dimension: "memories",
            });
        }
        let n = rows.len();
        let mut data = Vec::with_capacity(n * m);
        for (p, row) in rows.into_iter().enumerate() {
            assert_eq!(row.len(), m, "ragged request matrix at row {p}");
            let mut sum = 0.0;
            for (j, value) in row.iter().enumerate() {
                if !value.is_finite() || *value < 0.0 {
                    return Err(WorkloadError::InvalidMatrixEntry {
                        processor: p,
                        memory: j,
                        value: *value,
                    });
                }
                sum += value;
            }
            if (sum - 1.0).abs() > ROW_SUM_TOL {
                return Err(WorkloadError::RowNotStochastic { processor: p, sum });
            }
            data.extend(row);
        }
        Ok(Self { n, m, data })
    }

    /// Number of processors (rows).
    pub fn processors(&self) -> usize {
        self.n
    }

    /// Number of memories (columns).
    pub fn memories(&self) -> usize {
        self.m
    }

    /// Probability that processor `p` targets memory `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn prob(&self, p: usize, j: usize) -> f64 {
        assert!(p < self.n, "processor {p} out of range ({})", self.n);
        assert!(j < self.m, "memory {j} out of range ({})", self.m);
        self.data[p * self.m + j]
    }

    /// Row `p` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn row(&self, p: usize) -> &[f64] {
        assert!(p < self.n, "processor {p} out of range ({})", self.n);
        &self.data[p * self.m..(p + 1) * self.m]
    }

    /// The probability that at least one processor requests memory `j` in a
    /// cycle, with per-processor request rate `r` — the exact per-memory
    /// version of the paper's equation (2):
    ///
    /// `X_j = 1 − Π_p (1 − r·prob(p, j))`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidProbability`] if `r ∉ [0, 1]` and
    /// [`WorkloadError::IndexOutOfRange`] if `j ≥ M`.
    pub fn memory_request_prob(&self, j: usize, r: f64) -> Result<f64, WorkloadError> {
        if !(0.0..=1.0).contains(&r) || !r.is_finite() {
            return Err(WorkloadError::InvalidProbability {
                name: "request rate r",
                value: r,
            });
        }
        if j >= self.m {
            return Err(WorkloadError::IndexOutOfRange {
                kind: "memory",
                index: j,
                len: self.m,
            });
        }
        let mut none = 1.0;
        for p in 0..self.n {
            none *= 1.0 - r * self.prob(p, j);
        }
        Ok(1.0 - none)
    }

    /// [`RequestMatrix::memory_request_prob`] for every memory at once.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidProbability`] if `r ∉ [0, 1]`.
    pub fn memory_request_probs(&self, r: f64) -> Result<Vec<f64>, WorkloadError> {
        (0..self.m)
            .map(|j| self.memory_request_prob(j, r))
            .collect()
    }

    /// Total expected requests per cycle at rate `r`: `N·r`.
    pub fn offered_load(&self, r: f64) -> f64 {
        self.n as f64 * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_rows() {
        assert!(matches!(
            RequestMatrix::from_rows(vec![]).unwrap_err(),
            WorkloadError::ZeroDimension { .. }
        ));
        assert!(matches!(
            RequestMatrix::from_rows(vec![vec![]]).unwrap_err(),
            WorkloadError::ZeroDimension { .. }
        ));
        assert!(matches!(
            RequestMatrix::from_rows(vec![vec![0.5, 0.4]]).unwrap_err(),
            WorkloadError::RowNotStochastic { processor: 0, .. }
        ));
        assert!(matches!(
            RequestMatrix::from_rows(vec![vec![1.5, -0.5]]).unwrap_err(),
            WorkloadError::InvalidMatrixEntry {
                processor: 0,
                memory: 1,
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = RequestMatrix::from_rows(vec![vec![1.0], vec![0.5, 0.5]]);
    }

    #[test]
    fn memory_request_prob_uniform_closed_form() {
        // Uniform 4×4: X = 1 − (1 − r/4)^4.
        let rows = vec![vec![0.25; 4]; 4];
        let m = RequestMatrix::from_rows(rows).unwrap();
        for r in [0.0, 0.5, 1.0] {
            let expected = 1.0 - (1.0 - r / 4.0f64).powi(4);
            for j in 0..4 {
                assert!((m.memory_request_prob(j, r).unwrap() - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zero_rate_means_no_requests() {
        let m = RequestMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert_eq!(m.memory_request_prob(0, 0.0).unwrap(), 0.0);
        assert_eq!(m.offered_load(0.0), 0.0);
    }

    #[test]
    fn rejects_bad_rate_and_index() {
        let m = RequestMatrix::from_rows(vec![vec![1.0]]).unwrap();
        assert!(m.memory_request_prob(0, 1.5).is_err());
        assert!(m.memory_request_prob(0, f64::NAN).is_err());
        assert!(m.memory_request_prob(3, 0.5).is_err());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // j indexes two parallel views
    fn probs_vector_matches_scalar() {
        let m = RequestMatrix::from_rows(vec![vec![0.7, 0.3], vec![0.2, 0.8]]).unwrap();
        let all = m.memory_request_probs(0.9).unwrap();
        for j in 0..2 {
            assert_eq!(all[j], m.memory_request_prob(j, 0.9).unwrap());
        }
    }
}
