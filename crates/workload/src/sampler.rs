//! Constant-time destination sampling (Walker's alias method).

use crate::{RequestMatrix, WorkloadError};
use rand::Rng;

/// Walker/Vose alias sampler: draws from a fixed discrete distribution in
/// `O(1)` per sample after `O(n)` setup.
///
/// The simulator samples one destination per requesting processor per cycle,
/// so constant-time sampling keeps large sweeps cheap. (An ablation bench in
/// `mbus-bench` compares this against naive linear CDF scanning.)
///
/// # Examples
///
/// ```
/// use mbus_workload::AliasSampler;
/// use rand::SeedableRng;
///
/// let sampler = AliasSampler::new(&[0.5, 0.25, 0.25])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let draw = sampler.sample(&mut rng);
/// assert!(draw < 3);
/// # Ok::<(), mbus_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasSampler {
    /// Per-column `(acceptance threshold, alias outcome)`. Interleaved in
    /// one vector so a draw touches a single cache line, not two arrays.
    cells: Vec<(f64, usize)>,
}

impl AliasSampler {
    /// Builds an alias table for `weights` (non-negative, at least one
    /// positive; they need not sum to 1 — they are normalized internally).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidMatrixEntry`] for negative or
    /// non-finite weights and [`WorkloadError::ZeroDimension`] for an empty
    /// or all-zero weight vector.
    pub fn new(weights: &[f64]) -> Result<Self, WorkloadError> {
        if weights.is_empty() {
            return Err(WorkloadError::ZeroDimension {
                dimension: "sampler outcomes",
            });
        }
        for (j, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(WorkloadError::InvalidMatrixEntry {
                    processor: 0,
                    memory: j,
                    value: w,
                });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(WorkloadError::ZeroDimension {
                dimension: "positive sampler weights",
            });
        }
        let n = weights.len();
        // Scale weights so the average column holds exactly 1.0.
        let scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        let mut remaining = scaled;
        for (i, &w) in remaining.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = remaining[s];
            alias[s] = l;
            remaining[l] = (remaining[l] + remaining[s]) - 1.0;
            if remaining[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are numerically 1.0.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Ok(Self {
            cells: prob.into_iter().zip(alias).collect(),
        })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the sampler has no outcomes (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Draws one outcome index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let column = rng.random_range(0..self.cells.len());
        let (threshold, alias) = self.cells[column];
        if rng.random::<f64>() < threshold {
            column
        } else {
            alias
        }
    }
}

/// Per-processor destination sampling for a whole workload: one alias table
/// per request-matrix row, plus the Bernoulli request rate `r`.
///
/// # Examples
///
/// ```
/// use mbus_workload::{RequestModel, UniformModel, WorkloadSampler};
/// use rand::SeedableRng;
///
/// let matrix = UniformModel::new(4, 4)?.matrix();
/// let sampler = WorkloadSampler::new(&matrix, 0.5)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// // Each cycle, each processor requests some memory or stays idle.
/// let request = sampler.sample_processor(0, &mut rng);
/// assert!(request.is_none() || request.unwrap() < 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadSampler {
    rows: Vec<AliasSampler>,
    rate: f64,
}

impl WorkloadSampler {
    /// Builds samplers for every processor of `matrix` with request rate
    /// `r`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidProbability`] for `r ∉ [0, 1]`, and
    /// propagates [`AliasSampler::new`] errors (impossible for validated
    /// matrices).
    pub fn new(matrix: &RequestMatrix, r: f64) -> Result<Self, WorkloadError> {
        if !r.is_finite() || !(0.0..=1.0).contains(&r) {
            return Err(WorkloadError::InvalidProbability {
                name: "request rate r",
                value: r,
            });
        }
        let rows = (0..matrix.processors())
            .map(|p| AliasSampler::new(matrix.row(p)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { rows, rate: r })
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.rows.len()
    }

    /// The request rate `r`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// One cycle's decision for processor `p`: `Some(memory)` with
    /// probability `r`, `None` (idle) otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn sample_processor<R: Rng + ?Sized>(&self, p: usize, rng: &mut R) -> Option<usize> {
        let row = &self.rows[p];
        if self.rate >= 1.0 || rng.random::<f64>() < self.rate {
            Some(row.sample(rng))
        } else {
            None
        }
    }

    /// Samples every processor for one cycle into `out` (`out[p]` is the
    /// destination or `None`). `out` is cleared first.
    pub fn sample_cycle<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<Option<usize>>) {
        out.clear();
        out.extend((0..self.rows.len()).map(|p| self.sample_processor(p, rng)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_weights() {
        assert!(AliasSampler::new(&[]).is_err());
        assert!(AliasSampler::new(&[0.0, 0.0]).is_err());
        assert!(AliasSampler::new(&[0.5, -0.1]).is_err());
        assert!(AliasSampler::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn degenerate_distribution_always_hits() {
        let sampler = AliasSampler::new(&[0.0, 1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [0.1, 0.2, 0.3, 0.4];
        let sampler = AliasSampler::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 4];
        let draws = 200_000;
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / draws as f64;
            assert!(
                (freq - w).abs() < 0.01,
                "outcome {i}: frequency {freq} vs weight {w}"
            );
        }
    }

    #[test]
    fn unnormalized_weights_are_normalized() {
        let a = AliasSampler::new(&[1.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| a.sample(&mut rng) == 1).count();
        assert!((hits as f64 / 100_000.0 - 0.75).abs() < 0.01);
    }

    #[test]
    fn workload_sampler_respects_rate() {
        let matrix = RequestMatrix::from_rows(vec![vec![1.0]; 2]).unwrap();
        let sampler = WorkloadSampler::new(&matrix, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let cycles = 100_000;
        let mut requests = 0usize;
        for _ in 0..cycles {
            if sampler.sample_processor(0, &mut rng).is_some() {
                requests += 1;
            }
        }
        assert!((requests as f64 / cycles as f64 - 0.3).abs() < 0.01);
    }

    #[test]
    fn rate_one_always_requests() {
        let matrix = RequestMatrix::from_rows(vec![vec![0.5, 0.5]]).unwrap();
        let sampler = WorkloadSampler::new(&matrix, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(sampler.sample_processor(0, &mut rng).is_some());
        }
    }

    #[test]
    fn sample_cycle_covers_all_processors() {
        let matrix = RequestMatrix::from_rows(vec![vec![1.0]; 5]).unwrap();
        let sampler = WorkloadSampler::new(&matrix, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let mut out = Vec::new();
        sampler.sample_cycle(&mut rng, &mut out);
        assert_eq!(out, vec![Some(0); 5]);
    }

    #[test]
    fn rejects_bad_rate() {
        let matrix = RequestMatrix::from_rows(vec![vec![1.0]]).unwrap();
        assert!(WorkloadSampler::new(&matrix, 1.5).is_err());
        assert!(WorkloadSampler::new(&matrix, f64::NAN).is_err());
    }
}
