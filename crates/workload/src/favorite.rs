//! Das & Bhuyan's favorite-memory model.

use crate::{RequestModel, WorkloadError};
use serde::{Deserialize, Serialize};

/// The favorite-memory model of Das & Bhuyan (*Bandwidth availability of
/// multiple-bus multiprocessors*, IEEE TC 1985), reference \[4\] of the paper:
/// each processor `p` sends a fraction `α` of its requests to one favorite
/// memory (`p mod M`) and spreads the remaining `1 − α` uniformly over the
/// other `M − 1` memories.
///
/// The uniform model is the special case `α = 1/M`. Unlike the hierarchical
/// model, per-memory request probabilities here can be *heterogeneous* when
/// `N ≠ M` (some memories are the favorite of more processors than others),
/// which is what exercises this workspace's Poisson-binomial generalization
/// of the paper's analysis.
///
/// # Examples
///
/// ```
/// use mbus_workload::{FavoriteModel, RequestModel};
///
/// let model = FavoriteModel::new(4, 4, 0.7)?;
/// assert_eq!(model.prob(2, 2), 0.7);
/// assert!((model.prob(2, 0) - 0.1).abs() < 1e-12);
/// # Ok::<(), mbus_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FavoriteModel {
    n: usize,
    m: usize,
    alpha: f64,
}

impl FavoriteModel {
    /// A favorite-memory model over `n` processors and `m` memories with
    /// favorite weight `alpha`.
    ///
    /// # Errors
    ///
    /// * zero dimensions → [`WorkloadError::ZeroDimension`];
    /// * `alpha ∉ [0, 1]` → [`WorkloadError::InvalidProbability`]. For
    ///   `m == 1`, `alpha` must be exactly 1 (there is nowhere else to go).
    pub fn new(n: usize, m: usize, alpha: f64) -> Result<Self, WorkloadError> {
        if n == 0 {
            return Err(WorkloadError::ZeroDimension {
                dimension: "processors",
            });
        }
        if m == 0 {
            return Err(WorkloadError::ZeroDimension {
                dimension: "memories",
            });
        }
        if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) || (m == 1 && alpha != 1.0) {
            return Err(WorkloadError::InvalidProbability {
                name: "favorite weight alpha",
                value: alpha,
            });
        }
        Ok(Self { n, m, alpha })
    }

    /// The favorite memory of processor `p` (`p mod M`).
    pub fn favorite_of(&self, p: usize) -> usize {
        p % self.m
    }

    /// The favorite weight `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl RequestModel for FavoriteModel {
    fn processors(&self) -> usize {
        self.n
    }

    fn memories(&self) -> usize {
        self.m
    }

    fn prob(&self, p: usize, j: usize) -> f64 {
        assert!(p < self.n, "processor {p} out of range ({})", self.n);
        assert!(j < self.m, "memory {j} out of range ({})", self.m);
        if self.favorite_of(p) == j {
            self.alpha
        } else {
            (1.0 - self.alpha) / (self.m - 1) as f64
        }
    }

    fn name(&self) -> &str {
        "favorite-memory"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_stochastic() {
        let model = FavoriteModel::new(6, 4, 0.55).unwrap();
        let _ = model.matrix(); // validates
    }

    #[test]
    fn uniform_special_case() {
        let model = FavoriteModel::new(4, 8, 1.0 / 8.0).unwrap();
        for j in 0..8 {
            assert!((model.prob(1, j) - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn heterogeneous_when_n_exceeds_m() {
        // 6 processors, 4 memories: memories 0 and 1 are favorites of two
        // processors each, memories 2 and 3 of one each.
        let model = FavoriteModel::new(6, 4, 0.7).unwrap();
        let matrix = model.matrix();
        let x0 = matrix.memory_request_prob(0, 1.0).unwrap();
        let x3 = matrix.memory_request_prob(3, 1.0).unwrap();
        assert!(
            x0 > x3,
            "double-favorite memory must be hotter: {x0} vs {x3}"
        );
    }

    #[test]
    fn single_memory_requires_alpha_one() {
        assert!(FavoriteModel::new(2, 1, 0.5).is_err());
        let model = FavoriteModel::new(2, 1, 1.0).unwrap();
        assert_eq!(model.prob(0, 0), 1.0);
    }

    #[test]
    fn rejects_invalid_alpha() {
        assert!(FavoriteModel::new(2, 2, -0.1).is_err());
        assert!(FavoriteModel::new(2, 2, 1.1).is_err());
        assert!(FavoriteModel::new(2, 2, f64::NAN).is_err());
    }
}
