//! Validated request-fraction vectors `m₀ … mₙ`.

use crate::{Hierarchy, WorkloadError};
use serde::{Deserialize, Serialize};

/// Tolerance for the normalization check `Σ mᵢ·Nᵢ = 1`.
const NORMALIZATION_TOL: f64 = 1e-9;

/// The per-level request fractions of the hierarchical model, validated
/// against a [`Hierarchy`]'s target counts: `Σᵢ mᵢ·Nᵢ = 1` (paper
/// formula (1)).
///
/// `mᵢ` is the probability that a processor's request (given one is issued)
/// goes to *one particular* memory of level `i`. The paper's §IV instead
/// quotes *aggregate* shares (e.g. "0.6 to its favorite, 0.3 to its cluster,
/// 0.1 elsewhere"); use [`Fractions::from_aggregate_shares`] for that form.
///
/// # Examples
///
/// ```
/// use mbus_workload::{Fractions, Hierarchy};
///
/// let h = Hierarchy::two_level(8, 4)?; // N1 = 1, N2 = 6
/// let f = Fractions::from_aggregate_shares(&h, &[0.6, 0.3, 0.1])?;
/// assert!((f.get(0) - 0.6).abs() < 1e-12);
/// assert!((f.get(1) - 0.3).abs() < 1e-12);
/// assert!((f.get(2) - 0.1 / 6.0).abs() < 1e-12);
/// # Ok::<(), mbus_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fractions {
    m: Vec<f64>,
}

impl Fractions {
    /// Validates per-memory fractions `m₀ … m_{L−1}` against `hierarchy`.
    ///
    /// # Errors
    ///
    /// * wrong length → [`WorkloadError::FractionCountMismatch`];
    /// * negative or non-finite entry → [`WorkloadError::InvalidFraction`];
    /// * `Σ mᵢ·Nᵢ ≠ 1` → [`WorkloadError::NotNormalized`].
    pub fn new(hierarchy: &Hierarchy, m: &[f64]) -> Result<Self, WorkloadError> {
        let expected = hierarchy.fraction_count();
        if m.len() != expected {
            return Err(WorkloadError::FractionCountMismatch {
                got: m.len(),
                expected,
            });
        }
        for (index, &value) in m.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(WorkloadError::InvalidFraction { index, value });
            }
        }
        let counts = hierarchy.target_counts();
        let sum: f64 = m.iter().zip(&counts).map(|(&mi, &ni)| mi * ni as f64).sum();
        if (sum - 1.0).abs() > NORMALIZATION_TOL {
            return Err(WorkloadError::NotNormalized { sum });
        }
        Ok(Self { m: m.to_vec() })
    }

    /// Builds fractions from *aggregate level shares*: `shares[i]` is the
    /// total probability mass a processor devotes to level `i`, which is
    /// split uniformly over that level's `Nᵢ` memories (`mᵢ = shares[i]/Nᵢ`).
    ///
    /// This is exactly how the paper's §IV describes its two-level
    /// configuration: shares `(0.6, 0.3, 0.1)`.
    ///
    /// # Errors
    ///
    /// * wrong length → [`WorkloadError::FractionCountMismatch`];
    /// * shares don't sum to 1 → [`WorkloadError::SharesNotNormalized`];
    /// * invalid entries → [`WorkloadError::InvalidFraction`].
    pub fn from_aggregate_shares(
        hierarchy: &Hierarchy,
        shares: &[f64],
    ) -> Result<Self, WorkloadError> {
        let expected = hierarchy.fraction_count();
        if shares.len() != expected {
            return Err(WorkloadError::FractionCountMismatch {
                got: shares.len(),
                expected,
            });
        }
        for (index, &value) in shares.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(WorkloadError::InvalidFraction { index, value });
            }
        }
        let total: f64 = shares.iter().sum();
        if (total - 1.0).abs() > NORMALIZATION_TOL {
            return Err(WorkloadError::SharesNotNormalized { sum: total });
        }
        let counts = hierarchy.target_counts();
        let m: Vec<f64> = shares
            .iter()
            .zip(&counts)
            .map(|(&share, &ni)| if ni == 0 { 0.0 } else { share / ni as f64 })
            .collect();
        Self::new(hierarchy, &m)
    }

    /// The uniform requesting model expressed as fractions: every memory
    /// requested with `1/M`.
    pub fn uniform(hierarchy: &Hierarchy) -> Self {
        let m_total = hierarchy.memories();
        let m = vec![1.0 / m_total as f64; hierarchy.fraction_count()];
        Self { m }
    }

    /// Fraction `mᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> f64 {
        self.m[i]
    }

    /// All fractions `m₀ … m_{L−1}`.
    pub fn as_slice(&self) -> &[f64] {
        &self.m
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.m.len()
    }

    /// Whether the vector is empty (never true for validated fractions).
    pub fn is_empty(&self) -> bool {
        self.m.is_empty()
    }

    /// Whether the fractions satisfy the paper's locality assumption
    /// `m₀ > m₁ > … > mₙ` (strictly decreasing). The paper assumes this "in
    /// general"; the math does not require it, so it is a query rather than
    /// a constructor constraint.
    pub fn is_strictly_decreasing(&self) -> bool {
        self.m.windows(2).all(|w| w[0] > w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h8() -> Hierarchy {
        Hierarchy::two_level(8, 4).unwrap()
    }

    #[test]
    fn validates_normalization() {
        let h = h8();
        // N = [1, 1, 6]: 0.6 + 0.3 + 6·(0.1/6) = 1.
        let f = Fractions::new(&h, &[0.6, 0.3, 0.1 / 6.0]).unwrap();
        assert!(f.is_strictly_decreasing());
        assert!(matches!(
            Fractions::new(&h, &[0.6, 0.3, 0.1]).unwrap_err(),
            WorkloadError::NotNormalized { .. }
        ));
    }

    #[test]
    fn rejects_wrong_arity_and_bad_values() {
        let h = h8();
        assert!(matches!(
            Fractions::new(&h, &[0.5, 0.5]).unwrap_err(),
            WorkloadError::FractionCountMismatch {
                got: 2,
                expected: 3
            }
        ));
        assert!(matches!(
            Fractions::new(&h, &[0.6, -0.3, 0.1]).unwrap_err(),
            WorkloadError::InvalidFraction { index: 1, .. }
        ));
        assert!(matches!(
            Fractions::new(&h, &[f64::NAN, 0.3, 0.1]).unwrap_err(),
            WorkloadError::InvalidFraction { index: 0, .. }
        ));
    }

    #[test]
    fn aggregate_shares_match_paper_setup() {
        // N = 16, 4 clusters: N1 = 3, N2 = 12.
        let h = Hierarchy::two_level(16, 4).unwrap();
        let f = Fractions::from_aggregate_shares(&h, &[0.6, 0.3, 0.1]).unwrap();
        assert!((f.get(0) - 0.6).abs() < 1e-12);
        assert!((f.get(1) - 0.1).abs() < 1e-12);
        assert!((f.get(2) - 0.1 / 12.0).abs() < 1e-12);
        assert!(f.is_strictly_decreasing());
    }

    #[test]
    fn aggregate_shares_must_sum_to_one() {
        let h = h8();
        assert!(matches!(
            Fractions::from_aggregate_shares(&h, &[0.6, 0.3, 0.2]).unwrap_err(),
            WorkloadError::SharesNotNormalized { .. }
        ));
    }

    #[test]
    fn uniform_fractions_normalize() {
        let h = h8();
        let f = Fractions::uniform(&h);
        let counts = h.target_counts();
        let sum: f64 = f
            .as_slice()
            .iter()
            .zip(&counts)
            .map(|(&m, &n)| m * n as f64)
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(!f.is_strictly_decreasing());
    }

    #[test]
    fn shared_leaf_fraction_arity() {
        let h = Hierarchy::shared(&[2, 2, 3], 2).unwrap();
        // Shared three-level hierarchy needs 3 fractions.
        let f = Fractions::from_aggregate_shares(&h, &[0.7, 0.2, 0.1]).unwrap();
        assert_eq!(f.len(), 3);
        // N = [2, 2, 4] → m = [0.35, 0.1, 0.025].
        assert!((f.get(0) - 0.35).abs() < 1e-12);
        assert!((f.get(2) - 0.025).abs() < 1e-12);
    }
}
