//! Replayable request traces.
//!
//! The simulator normally samples requests on the fly, but reproducible
//! experiments (and failure-injection A/B comparisons) want the *same*
//! request stream replayed against different topologies. A [`Trace`] is a
//! flat, cycle-ordered record of issued requests that any component can
//! replay.

use crate::{WorkloadError, WorkloadSampler};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One issued request: processor `processor` targeted memory `memory` in
/// cycle `cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Cycle index, starting at 0.
    pub cycle: u64,
    /// Requesting processor.
    pub processor: usize,
    /// Target memory module.
    pub memory: usize,
}

/// A cycle-ordered sequence of request records over a fixed number of
/// cycles.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trace {
    cycles: u64,
    records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace spanning `cycles` cycles.
    pub fn empty(cycles: u64) -> Self {
        Self {
            cycles,
            records: Vec::new(),
        }
    }

    /// Generates a trace by sampling `sampler` for `cycles` cycles.
    pub fn generate<R: Rng + ?Sized>(sampler: &WorkloadSampler, cycles: u64, rng: &mut R) -> Self {
        let mut records = Vec::new();
        for cycle in 0..cycles {
            for p in 0..sampler.processors() {
                if let Some(memory) = sampler.sample_processor(p, rng) {
                    records.push(TraceRecord {
                        cycle,
                        processor: p,
                        memory,
                    });
                }
            }
        }
        Self { cycles, records }
    }

    /// Builds a trace from pre-sorted records.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::IndexOutOfRange`] if any record's cycle is
    /// `≥ cycles`, or if the records are not sorted by cycle.
    pub fn from_records(cycles: u64, records: Vec<TraceRecord>) -> Result<Self, WorkloadError> {
        let mut last = 0u64;
        for rec in &records {
            if rec.cycle >= cycles {
                return Err(WorkloadError::IndexOutOfRange {
                    kind: "cycle",
                    index: rec.cycle as usize,
                    len: cycles as usize,
                });
            }
            if rec.cycle < last {
                return Err(WorkloadError::IndexOutOfRange {
                    kind: "unsorted trace cycle",
                    index: rec.cycle as usize,
                    len: last as usize,
                });
            }
            last = rec.cycle;
        }
        Ok(Self { cycles, records })
    }

    /// Number of cycles the trace spans.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total number of issued requests.
    pub fn request_count(&self) -> usize {
        self.records.len()
    }

    /// All records, cycle-ordered.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Mean requests issued per cycle (the empirical offered load `N·r`).
    pub fn offered_load(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.records.len() as f64 / self.cycles as f64
        }
    }

    /// Iterates over cycles, yielding `(cycle, records_in_that_cycle)`;
    /// cycles without requests yield empty slices.
    pub fn iter_cycles(&self) -> CycleIter<'_> {
        CycleIter {
            trace: self,
            next_cycle: 0,
            cursor: 0,
        }
    }

    /// Per-memory request counts, for hot-spot inspection (length =
    /// `max memory index + 1`).
    pub fn memory_histogram(&self) -> Vec<u64> {
        let len = self.records.iter().map(|r| r.memory + 1).max().unwrap_or(0);
        let mut counts = vec![0u64; len];
        for rec in &self.records {
            counts[rec.memory] += 1;
        }
        counts
    }
}

/// Iterator over the cycles of a [`Trace`]; see [`Trace::iter_cycles`].
#[derive(Debug)]
pub struct CycleIter<'a> {
    trace: &'a Trace,
    next_cycle: u64,
    cursor: usize,
}

impl<'a> Iterator for CycleIter<'a> {
    type Item = (u64, &'a [TraceRecord]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_cycle >= self.trace.cycles {
            return None;
        }
        let cycle = self.next_cycle;
        let start = self.cursor;
        while self.cursor < self.trace.records.len()
            && self.trace.records[self.cursor].cycle == cycle
        {
            self.cursor += 1;
        }
        self.next_cycle += 1;
        Some((cycle, &self.trace.records[start..self.cursor]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RequestModel, UniformModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler(n: usize, m: usize, r: f64) -> WorkloadSampler {
        WorkloadSampler::new(&UniformModel::new(n, m).unwrap().matrix(), r).unwrap()
    }

    #[test]
    fn generated_trace_has_expected_load() {
        let mut rng = StdRng::seed_from_u64(17);
        let trace = Trace::generate(&sampler(4, 4, 0.5), 10_000, &mut rng);
        assert_eq!(trace.cycles(), 10_000);
        // Offered load ≈ N·r = 2.
        assert!((trace.offered_load() - 2.0).abs() < 0.05);
    }

    #[test]
    fn rate_one_records_every_processor_every_cycle() {
        let mut rng = StdRng::seed_from_u64(23);
        let trace = Trace::generate(&sampler(3, 4, 1.0), 50, &mut rng);
        assert_eq!(trace.request_count(), 150);
        for (cycle, recs) in trace.iter_cycles() {
            assert_eq!(recs.len(), 3, "cycle {cycle}");
            assert_eq!(
                recs.iter().map(|r| r.processor).collect::<Vec<_>>(),
                vec![0, 1, 2]
            );
        }
    }

    #[test]
    fn iter_cycles_covers_empty_cycles() {
        let trace = Trace::from_records(
            3,
            vec![TraceRecord {
                cycle: 1,
                processor: 0,
                memory: 0,
            }],
        )
        .unwrap();
        let sizes: Vec<usize> = trace.iter_cycles().map(|(_, recs)| recs.len()).collect();
        assert_eq!(sizes, vec![0, 1, 0]);
    }

    #[test]
    fn from_records_validates() {
        let bad_cycle = Trace::from_records(
            2,
            vec![TraceRecord {
                cycle: 5,
                processor: 0,
                memory: 0,
            }],
        );
        assert!(bad_cycle.is_err());
        let unsorted = Trace::from_records(
            5,
            vec![
                TraceRecord {
                    cycle: 3,
                    processor: 0,
                    memory: 0,
                },
                TraceRecord {
                    cycle: 1,
                    processor: 0,
                    memory: 0,
                },
            ],
        );
        assert!(unsorted.is_err());
    }

    #[test]
    fn memory_histogram_counts() {
        let trace = Trace::from_records(
            2,
            vec![
                TraceRecord {
                    cycle: 0,
                    processor: 0,
                    memory: 2,
                },
                TraceRecord {
                    cycle: 1,
                    processor: 1,
                    memory: 2,
                },
                TraceRecord {
                    cycle: 1,
                    processor: 0,
                    memory: 0,
                },
            ],
        )
        .unwrap();
        assert_eq!(trace.memory_histogram(), vec![1, 0, 2]);
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let s = sampler(4, 4, 0.7);
        let t1 = Trace::generate(&s, 100, &mut StdRng::seed_from_u64(99));
        let t2 = Trace::generate(&s, 100, &mut StdRng::seed_from_u64(99));
        assert_eq!(t1, t2);
    }
}
