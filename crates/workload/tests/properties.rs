//! Property-based tests for the workload models.

use mbus_workload::{
    AliasSampler, FavoriteModel, Fractions, HierarchicalModel, Hierarchy, RequestMatrix,
    RequestModel, UniformModel, WorkloadSampler,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary small paired hierarchies.
fn paired_hierarchy() -> impl Strategy<Value = Hierarchy> {
    proptest::collection::vec(2usize..=4, 1..=3)
        .prop_map(|ks| Hierarchy::paired(&ks).expect("positive factors"))
}

/// Arbitrary aggregate shares for a hierarchy (normalized simplex point).
fn shares_for(levels: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.05f64..1.0, levels).prop_map(|raw| {
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|v| v / total).collect()
    })
}

/// Arbitrary matrices built from a small pool of distinct rows duplicated
/// by a random assignment — the structure `RowGroups` must recover.
fn duplicated_row_matrix() -> impl Strategy<Value = (RequestMatrix, Vec<usize>)> {
    (2usize..=5, 1usize..=4)
        .prop_flat_map(|(m, pool)| {
            let rows = proptest::collection::vec(
                proptest::collection::vec(0.05f64..1.0, m),
                pool,
            );
            let picks = proptest::collection::vec(0..pool, 1..=10);
            (rows, picks)
        })
        .prop_map(|(raw_rows, picks)| {
            let pool: Vec<Vec<f64>> = raw_rows
                .into_iter()
                .map(|raw| {
                    let total: f64 = raw.iter().sum();
                    raw.into_iter().map(|v| v / total).collect()
                })
                .collect();
            let rows: Vec<Vec<f64>> = picks.iter().map(|&g| pool[g].clone()).collect();
            let matrix = RequestMatrix::from_rows(rows).expect("normalized rows");
            (matrix, picks)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Hierarchy target counts always partition the memory space, and
    /// requester counts the processor space.
    #[test]
    fn hierarchy_counts_partition(h in paired_hierarchy()) {
        let targets: usize = h.target_counts().iter().sum();
        prop_assert_eq!(targets, h.memories());
        let requesters: usize = h.requester_counts().iter().sum();
        prop_assert_eq!(requesters, h.processors());
    }

    /// `fraction_level` is symmetric for paired hierarchies and consistent
    /// with the level counts from every viewpoint.
    #[test]
    fn fraction_levels_consistent(h in paired_hierarchy()) {
        let counts = h.target_counts();
        for p in 0..h.processors() {
            let mut seen = vec![0usize; h.fraction_count()];
            for j in 0..h.memories() {
                let level = h.fraction_level(p, j);
                prop_assert_eq!(level, h.fraction_level(j, p), "symmetry");
                seen[level] += 1;
            }
            prop_assert_eq!(&seen, &counts, "processor {}", p);
        }
    }

    /// Any simplex point of aggregate shares yields a validated model with
    /// row-stochastic matrix.
    #[test]
    fn aggregate_shares_always_validate(h in paired_hierarchy(),
                                        shares in shares_for(4)) {
        let shares = &shares[..h.fraction_count()];
        let total: f64 = shares.iter().sum();
        let shares: Vec<f64> = shares.iter().map(|s| s / total).collect();
        let model = HierarchicalModel::with_aggregate_shares(h.clone(), &shares).unwrap();
        let matrix = model.matrix(); // panics inside if not stochastic
        prop_assert_eq!(matrix.processors(), h.processors());
        // Per-memory request probabilities are homogeneous for paired
        // hierarchies.
        let xs = matrix.memory_request_probs(1.0).unwrap();
        for &x in &xs {
            prop_assert!((x - xs[0]).abs() < 1e-12);
        }
    }

    /// Uniform and favorite models are row-stochastic for any shape, and
    /// the favorite model's diagonal carries weight α.
    #[test]
    fn favorite_model_shape(n in 1usize..12, m in 2usize..12, alpha in 0.0f64..=1.0) {
        let model = FavoriteModel::new(n, m, alpha).unwrap();
        let matrix = model.matrix();
        for p in 0..n {
            prop_assert_eq!(matrix.prob(p, model.favorite_of(p)), alpha);
        }
        let uniform = UniformModel::new(n, m).unwrap().matrix();
        prop_assert_eq!(uniform.prob(0, m - 1), 1.0 / m as f64);
    }

    /// X_j is monotone in r for every memory of any model.
    #[test]
    fn request_prob_monotone_in_rate(n in 1usize..8, m in 2usize..8,
                                     alpha in 0.1f64..0.9, r in 0.0f64..0.95) {
        let matrix = FavoriteModel::new(n, m, alpha).unwrap().matrix();
        for j in 0..m {
            let lo = matrix.memory_request_prob(j, r).unwrap();
            let hi = matrix.memory_request_prob(j, (r + 0.05).min(1.0)).unwrap();
            prop_assert!(hi >= lo - 1e-12);
        }
    }

    /// `groups()` round-trips the matrix: rebuilding each row from its
    /// group's representative reproduces the matrix bit-for-bit, the group
    /// sizes partition the processors, and two processors share a group
    /// exactly when their rows are bit-identical.
    #[test]
    fn row_groups_round_trip_matrix((matrix, picks) in duplicated_row_matrix()) {
        let groups = matrix.groups();
        let n = matrix.processors();
        prop_assert_eq!(groups.is_empty(), false);

        // Partition: sizes sum to N; representatives strictly increase and
        // belong to their own group.
        let total: usize = (0..groups.len()).map(|g| groups.count(g)).sum();
        prop_assert_eq!(total, n);
        for g in 0..groups.len() {
            let rep = groups.representative(g);
            prop_assert_eq!(groups.group_of(rep), g);
            if g > 0 {
                prop_assert!(rep > groups.representative(g - 1));
            }
        }

        // Round trip: every row equals its representative's row, bit for bit.
        for p in 0..n {
            let rep = groups.representative(groups.group_of(p));
            let rebuilt: Vec<u64> = matrix.row(rep).iter().map(|v| v.to_bits()).collect();
            let original: Vec<u64> = matrix.row(p).iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(rebuilt, original, "processor {}", p);
        }

        // Exactness: same group ⟺ same pool pick (pool rows are distinct
        // with probability 1; guard with a bit-level check so duplicate
        // random pool rows cannot produce a false failure).
        for p in 0..n {
            for q in 0..n {
                let same_bits = matrix.row(p).iter().map(|v| v.to_bits())
                    .eq(matrix.row(q).iter().map(|v| v.to_bits()));
                prop_assert_eq!(groups.group_of(p) == groups.group_of(q), same_bits,
                    "processors {} / {} (picks {:?})", p, q, &picks);
            }
        }
    }

    /// Fractions reject non-normalized vectors and accept normalized ones.
    #[test]
    fn fractions_normalization_boundary(h in paired_hierarchy(), scale in 0.5f64..2.0) {
        let uniform = Fractions::uniform(&h);
        let scaled: Vec<f64> = uniform.as_slice().iter().map(|m| m * scale).collect();
        let result = Fractions::new(&h, &scaled);
        if (scale - 1.0).abs() < 1e-12 {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }
}

/// Sampler distributions match their weights (statistical test, fixed
/// seeds, outside proptest to keep run time bounded).
#[test]
fn alias_sampler_statistical_agreement() {
    let model = HierarchicalModel::two_level_paired(8, 4, [0.6, 0.3, 0.1]).unwrap();
    let matrix = model.matrix();
    let sampler = AliasSampler::new(matrix.row(2)).unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let draws = 400_000;
    let mut counts = [0u32; 8];
    for _ in 0..draws {
        counts[sampler.sample(&mut rng)] += 1;
    }
    for (j, &c) in counts.iter().enumerate() {
        let freq = c as f64 / draws as f64;
        assert!(
            (freq - matrix.prob(2, j)).abs() < 0.005,
            "memory {j}: {freq} vs {}",
            matrix.prob(2, j)
        );
    }
}

/// The workload sampler's empirical per-memory request probability matches
/// the analytical X_j.
#[test]
fn workload_sampler_matches_analytic_x() {
    let model = HierarchicalModel::two_level_paired(8, 4, [0.6, 0.3, 0.1]).unwrap();
    let matrix = model.matrix();
    let r = 0.7;
    let sampler = WorkloadSampler::new(&matrix, r).unwrap();
    let xs = matrix.memory_request_probs(r).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let cycles = 200_000;
    let mut hit = [0u32; 8];
    let mut out = Vec::new();
    for _ in 0..cycles {
        sampler.sample_cycle(&mut rng, &mut out);
        let mut requested = [false; 8];
        for d in out.iter().flatten() {
            requested[*d] = true;
        }
        for (j, &req) in requested.iter().enumerate() {
            hit[j] += u32::from(req);
        }
    }
    for j in 0..8 {
        let freq = hit[j] as f64 / cycles as f64;
        assert!(
            (freq - xs[j]).abs() < 0.005,
            "memory {j}: empirical {freq} vs analytic {}",
            xs[j]
        );
    }
}
