//! The paper's equations, verbatim, for homogeneous traffic.
//!
//! Every function in this module corresponds to a numbered equation of
//! Chen & Sheu's §III and assumes that every memory module is requested with
//! the *same* probability `X` — exactly the paper's setting for the
//! `N × N × B` hierarchical and uniform models. The generalized
//! (heterogeneous-`X`) versions live in [`crate::bandwidth`]; the test suite
//! asserts the two agree on homogeneous inputs.

use crate::AnalysisError;
use mbus_stats::prob::{check, Binomial};
use mbus_workload::{Fractions, Hierarchy};

fn check_prob(name: &'static str, value: f64) -> Result<(), AnalysisError> {
    if !value.is_finite() || !(0.0..=1.0).contains(&value) {
        return Err(AnalysisError::InvalidProbability { name, value });
    }
    Ok(())
}

/// Equation (2): the probability `X` that at least one processor requests a
/// particular memory module in a cycle,
///
/// `X = 1 − (1 − r·m₀)^{N₀} (1 − r·m₁)^{N₁} ⋯ (1 − r·mₙ)^{Nₙ}`
///
/// where `Nᵢ` are the *requester* counts of the hierarchy (for the paper's
/// paired `N × N` hierarchy these equal formula (1); for shared-leaf
/// hierarchies the processor-side counts are used).
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidRate`] if `r ∉ [0, 1]` and
/// [`AnalysisError::Workload`] if the fractions do not match the hierarchy.
///
/// # Examples
///
/// ```
/// use mbus_analysis::paper::eq2_request_probability;
/// use mbus_workload::{Fractions, Hierarchy};
///
/// // N = 8, four clusters, shares 0.6/0.3/0.1, r = 1: X ≈ 0.7469
/// // (the crossbar row of Table II is 8·X ≈ 5.98).
/// let h = Hierarchy::two_level(8, 4)?;
/// let f = Fractions::from_aggregate_shares(&h, &[0.6, 0.3, 0.1])?;
/// let x = eq2_request_probability(&h, &f, 1.0)?;
/// assert!((8.0 * x - 5.98).abs() < 0.01);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn eq2_request_probability(
    hierarchy: &Hierarchy,
    fractions: &Fractions,
    r: f64,
) -> Result<f64, AnalysisError> {
    if !r.is_finite() || !(0.0..=1.0).contains(&r) {
        return Err(AnalysisError::InvalidRate { value: r });
    }
    if fractions.len() != hierarchy.fraction_count() {
        return Err(AnalysisError::Workload(
            mbus_workload::WorkloadError::FractionCountMismatch {
                got: fractions.len(),
                expected: hierarchy.fraction_count(),
            },
        ));
    }
    let counts = hierarchy.requester_counts();
    let mut none = 1.0;
    for (i, &count) in counts.iter().enumerate() {
        none *= (1.0 - r * fractions.get(i)).powi(count as i32);
    }
    Ok(check::checked_probability(
        "eq (2) request probability X",
        1.0 - none,
    ))
}

/// The uniform-model request probability `X = 1 − (1 − r/M)^N` — the
/// eq (2) special case with every fraction equal to `1/M`.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidRate`] for `r ∉ [0, 1]`.
pub fn uniform_request_probability(n: usize, m: usize, r: f64) -> Result<f64, AnalysisError> {
    if !r.is_finite() || !(0.0..=1.0).contains(&r) {
        return Err(AnalysisError::InvalidRate { value: r });
    }
    Ok(check::checked_probability(
        "uniform request probability X",
        1.0 - (1.0 - r / m as f64).powi(n as i32),
    ))
}

/// Equations (3)–(4): bandwidth of the multiple bus network with **full**
/// bus–memory connection,
///
/// `MBW_f = M·X − Σ_{i=B+1}^{M} (i − B)·Pf(i)`, `Pf(i) = C(M,i)·Xⁱ(1−X)^{M−i}`,
///
/// i.e. `E[min(D, B)]` where `D ~ Bin(M, X)` is the number of requested
/// modules. (The paper writes `N` where we write `M` because it analyzes
/// `N × N × B` networks; the arbiters are per *memory module*.)
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidProbability`] if `X ∉ [0, 1]`.
pub fn eq4_full_bandwidth(m: usize, b: usize, x: f64) -> Result<f64, AnalysisError> {
    check_prob("request probability X", x)?;
    let bw = Binomial::new(m as u64, x).expected_min_with(b as u64);
    check::assert_bandwidth_bounds(bw, b, m, m);
    Ok(bw)
}

/// Equations (5)–(6): bandwidth of the **single** bus–memory connection
/// network, `MBW_s = Σᵢ Yᵢ` with `Yᵢ = 1 − (1 − X)^{Mᵢ}` and `Mᵢ` the number
/// of memories on bus `i`.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidProbability`] if `X ∉ [0, 1]`.
pub fn eq6_single_bandwidth(memories_per_bus: &[usize], x: f64) -> Result<f64, AnalysisError> {
    check_prob("request probability X", x)?;
    let bw: f64 = memories_per_bus
        .iter()
        .map(|&mi| 1.0 - (1.0 - x).powi(mi as i32))
        .sum();
    let m: usize = memories_per_bus.iter().sum();
    check::assert_bandwidth_bounds(bw, memories_per_bus.len(), m, m);
    Ok(bw)
}

/// Equations (7)–(9): bandwidth of the **partial bus network** with `g`
/// groups,
///
/// `MBW_p = g · E[min(D_g, B/g)]`, `D_g ~ Bin(M/g, X)`.
///
/// # Errors
///
/// * `X ∉ [0, 1]` → [`AnalysisError::InvalidProbability`];
/// * `g` not dividing `m` and `b` → [`AnalysisError::DimensionMismatch`].
pub fn eq9_partial_bandwidth(m: usize, b: usize, g: usize, x: f64) -> Result<f64, AnalysisError> {
    check_prob("request probability X", x)?;
    if g == 0 || m % g != 0 || b % g != 0 {
        return Err(AnalysisError::DimensionMismatch {
            what: "groups",
            network: b,
            workload: g,
        });
    }
    let per_group = Binomial::new((m / g) as u64, x).expected_min_with((b / g) as u64);
    let bw = g as f64 * per_group;
    check::assert_bandwidth_bounds(bw, b, m, m);
    Ok(bw)
}

/// Equations (10)–(12): bandwidth of the **partial bus network with K
/// classes**,
///
/// `MBW_p′ = B − Σ_{i=1}^{B} Π_{j=a}^{K} Σ_{m=0}^{j−a} Q_j(m)`, `a = i+K−B`,
///
/// with `Q_j(m) = C(M_j, m)·Xᵐ(1−X)^{M_j−m}` and dummy classes (`j ≤ 0`)
/// contributing `Q(0) = 1`.
///
/// `class_sizes[c]` is `M_{c+1}` (0-based classes).
///
/// # Errors
///
/// * `X ∉ [0, 1]` → [`AnalysisError::InvalidProbability`];
/// * `K > B` or an empty class list → [`AnalysisError::DimensionMismatch`].
pub fn eq12_kclass_bandwidth(
    class_sizes: &[usize],
    b: usize,
    x: f64,
) -> Result<f64, AnalysisError> {
    check_prob("request probability X", x)?;
    let k = class_sizes.len();
    if k == 0 || k > b {
        return Err(AnalysisError::DimensionMismatch {
            what: "classes",
            network: b,
            workload: k,
        });
    }
    // Per-class pmfs of the number of requested modules.
    let pmfs: Vec<Vec<f64>> = class_sizes
        .iter()
        .map(|&mj| Binomial::new(mj as u64, x).to_pmf_vec())
        .collect();
    Ok(kclass_bandwidth_from_pmfs(&pmfs, b))
}

/// Shared core of equation (12): given each class's pmf `Q_j(·)` of
/// requested-module counts, sums the per-bus busy probabilities.
///
/// Bus `i` (1-based) idles iff class `a = i+K−B` has 0 requests, class
/// `a+1` at most 1, …, class `K` at most `B − i`; classes with `j ≤ 0` are
/// dummy (always idle contribution 1). Exposed for the heterogeneous
/// generalization in [`crate::bandwidth`], which feeds Poisson-binomial
/// pmfs instead of binomial ones.
pub fn kclass_bandwidth_from_pmfs(pmfs: &[Vec<f64>], b: usize) -> f64 {
    for pmf in pmfs {
        check::assert_distribution_sums_to_one("class request pmf Q_j", pmf);
    }
    let k = pmfs.len();
    let mut total = 0.0;
    for i in 1..=b {
        // a = i + K - B, 1-based; j runs a..=K over real classes only.
        let a = i as isize + k as isize - b as isize;
        let mut idle = 1.0;
        for j in 1..=k as isize {
            if j < a {
                continue;
            }
            // Σ_{m=0}^{j-a} Q_j(m); when a ≤ 0 the allowance j-a can exceed
            // the class size, in which case the sum saturates at 1.
            let allowance = (j - a) as usize;
            let pmf = &pmfs[(j - 1) as usize];
            let partial: f64 = pmf.iter().take(allowance + 1).sum();
            idle *= partial.min(1.0);
        }
        total += 1.0 - idle;
    }
    let m: usize = pmfs.iter().map(|pmf| pmf.len().saturating_sub(1)).sum();
    check::assert_bandwidth_bounds(total, b, m, m);
    total
}

/// The crossbar bound: with no bus interference every requested module is
/// served, so `MBW_xbar = M·X` — the `B ≥ M` limit of eq (4), where
/// `E[min(D, B)] = E[D]`.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidProbability`] if `X ∉ [0, 1]`.
pub fn crossbar_bandwidth(m: usize, x: f64) -> Result<f64, AnalysisError> {
    check_prob("request probability X", x)?;
    let bw = m as f64 * x;
    check::assert_bandwidth_bounds(bw, m, m, m);
    Ok(bw)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §IV hierarchical configuration for N×N networks.
    fn paper_x(n: usize, r: f64) -> f64 {
        let h = Hierarchy::two_level(n, 4).unwrap();
        let f = Fractions::from_aggregate_shares(&h, &[0.6, 0.3, 0.1]).unwrap();
        eq2_request_probability(&h, &f, r).unwrap()
    }

    #[test]
    fn table2_crossbar_row_hierarchical() {
        // Table II bottom row (crossbar = N·X), r = 1.0.
        for (n, expected) in [(8, 5.98), (12, 8.86), (16, 11.78)] {
            let mbw = crossbar_bandwidth(n, paper_x(n, 1.0)).unwrap();
            assert!((mbw - expected).abs() < 0.011, "N={n}: {mbw} vs {expected}");
        }
    }

    #[test]
    fn table2_crossbar_row_uniform() {
        for (n, expected) in [(8, 5.25), (12, 7.78), (16, 10.30)] {
            let x = uniform_request_probability(n, n, 1.0).unwrap();
            let mbw = crossbar_bandwidth(n, x).unwrap();
            assert!((mbw - expected).abs() < 0.011, "N={n}: {mbw} vs {expected}");
        }
    }

    #[test]
    fn table2_full_selected_cells() {
        // (N, B, hier, unif) cells from Table II, r = 1.0.
        let cells = [
            (8, 4, 3.97, 3.87),
            (8, 6, 5.52, 5.04),
            (12, 8, 7.73, 7.24),
            (16, 12, 11.20, 10.13),
        ];
        for (n, b, hier, unif) in cells {
            let mh = eq4_full_bandwidth(n, b, paper_x(n, 1.0)).unwrap();
            assert!((mh - hier).abs() < 0.011, "hier N={n} B={b}: {mh}");
            let xu = uniform_request_probability(n, n, 1.0).unwrap();
            let mu = eq4_full_bandwidth(n, b, xu).unwrap();
            assert!((mu - unif).abs() < 0.011, "unif N={n} B={b}: {mu}");
        }
    }

    #[test]
    fn table3_full_selected_cells_r05() {
        let cells = [(8, 4, 3.15, 2.99), (12, 6, 4.83, 4.57), (16, 8, 6.52, 6.15)];
        for (n, b, hier, unif) in cells {
            let mh = eq4_full_bandwidth(n, b, paper_x(n, 0.5)).unwrap();
            assert!((mh - hier).abs() < 0.011, "hier N={n} B={b}: {mh}");
            let xu = uniform_request_probability(n, n, 0.5).unwrap();
            let mu = eq4_full_bandwidth(n, b, xu).unwrap();
            assert!((mu - unif).abs() < 0.011, "unif N={n} B={b}: {mu}");
        }
    }

    #[test]
    fn table4_single_selected_cells() {
        // N memories over B buses, N/B each; r = 1.0 block.
        let cells = [
            (8, 4, 3.74, 3.53),
            (16, 8, 7.44, 6.99),
            (32, 16, 14.87, 13.90),
        ];
        for (n, b, hier, unif) in cells {
            let per_bus = vec![n / b; b];
            let mh = eq6_single_bandwidth(&per_bus, paper_x(n, 1.0)).unwrap();
            assert!((mh - hier).abs() < 0.011, "hier N={n} B={b}: {mh}");
            let xu = uniform_request_probability(n, n, 1.0).unwrap();
            let mu = eq6_single_bandwidth(&per_bus, xu).unwrap();
            assert!((mu - unif).abs() < 0.011, "unif N={n} B={b}: {mu}");
        }
    }

    #[test]
    fn table5_partial_selected_cells() {
        // g = 2; r = 1.0 block.
        let cells = [
            (8, 4, 3.89, 3.73),
            (16, 8, 7.92, 7.71),
            (32, 16, 15.97, 15.76),
        ];
        for (n, b, hier, unif) in cells {
            let mh = eq9_partial_bandwidth(n, b, 2, paper_x(n, 1.0)).unwrap();
            assert!((mh - hier).abs() < 0.011, "hier N={n} B={b}: {mh}");
            let xu = uniform_request_probability(n, n, 1.0).unwrap();
            let mu = eq9_partial_bandwidth(n, b, 2, xu).unwrap();
            assert!((mu - unif).abs() < 0.011, "unif N={n} B={b}: {mu}");
        }
    }

    #[test]
    fn table6_kclass_selected_cells() {
        // K = B classes of N/K modules; r = 1.0 block.
        let cells = [
            (8, 4, 3.85, 3.68),
            (16, 8, 7.71, 7.35),
            (32, 16, 15.44, 14.70),
        ];
        for (n, b, hier, unif) in cells {
            let sizes = vec![n / b; b];
            let mh = eq12_kclass_bandwidth(&sizes, b, paper_x(n, 1.0)).unwrap();
            assert!((mh - hier).abs() < 0.011, "hier N={n} B={b}: {mh}");
            let xu = uniform_request_probability(n, n, 1.0).unwrap();
            let mu = eq12_kclass_bandwidth(&sizes, b, xu).unwrap();
            assert!((mu - unif).abs() < 0.011, "unif N={n} B={b}: {mu}");
        }
    }

    #[test]
    fn partial_with_one_group_equals_full() {
        // The paper notes eq (9) with g = 1 reduces to eq (4).
        let x = 0.6;
        for (m, b) in [(8, 4), (16, 7)] {
            let full = eq4_full_bandwidth(m, b, x).unwrap();
            let partial = eq9_partial_bandwidth(m, b, 1, x).unwrap();
            assert!((full - partial).abs() < 1e-12);
        }
    }

    #[test]
    fn kclass_with_one_class_equals_full() {
        // K = 1: all modules on all B buses.
        let x = 0.45;
        let full = eq4_full_bandwidth(8, 4, x).unwrap();
        let kclass = eq12_kclass_bandwidth(&[8], 4, x).unwrap();
        assert!((full - kclass).abs() < 1e-12);
    }

    #[test]
    fn single_with_b_equals_m_is_crossbar() {
        // Paper §IV: the single-connection network with B = N matches the
        // crossbar.
        let x = 0.7469;
        let single = eq6_single_bandwidth(&[1; 8], x).unwrap();
        let xbar = crossbar_bandwidth(8, x).unwrap();
        assert!((single - xbar).abs() < 1e-12);
    }

    #[test]
    fn degenerate_x_values() {
        assert_eq!(eq4_full_bandwidth(8, 4, 0.0).unwrap(), 0.0);
        assert_eq!(eq4_full_bandwidth(8, 4, 1.0).unwrap(), 4.0);
        assert_eq!(eq6_single_bandwidth(&[2, 2], 0.0).unwrap(), 0.0);
        assert_eq!(eq6_single_bandwidth(&[2, 2], 1.0).unwrap(), 2.0);
        assert_eq!(eq12_kclass_bandwidth(&[4, 4], 4, 1.0).unwrap(), 4.0);
    }

    #[test]
    fn input_validation() {
        assert!(eq2_request_probability(
            &Hierarchy::two_level(8, 4).unwrap(),
            &Fractions::from_aggregate_shares(
                &Hierarchy::two_level(8, 4).unwrap(),
                &[0.6, 0.3, 0.1]
            )
            .unwrap(),
            1.5
        )
        .is_err());
        assert!(eq4_full_bandwidth(8, 4, 1.2).is_err());
        assert!(eq9_partial_bandwidth(8, 4, 3, 0.5).is_err());
        assert!(eq12_kclass_bandwidth(&[], 4, 0.5).is_err());
        assert!(eq12_kclass_bandwidth(&[2; 5], 4, 0.5).is_err());
        assert!(uniform_request_probability(8, 8, -0.1).is_err());
    }

    #[test]
    fn uniform_is_hierarchical_special_case() {
        // Equation (2) with all fractions 1/N equals 1 − (1 − r/N)^N.
        let h = Hierarchy::two_level(8, 4).unwrap();
        let f = Fractions::uniform(&h);
        for r in [0.25, 0.5, 1.0] {
            let via_eq2 = eq2_request_probability(&h, &f, r).unwrap();
            let direct = uniform_request_probability(8, 8, r).unwrap();
            assert!((via_eq2 - direct).abs() < 1e-12);
        }
    }

    /// The acceptance demo for the invariant layer: feeding a pmf that does
    /// not sum to one into a formula function trips the debug-time
    /// distribution check instead of silently producing a wrong bandwidth.
    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "fires only with debug assertions")]
    #[should_panic(expected = "sums to")]
    fn broken_class_pmf_trips_the_invariant_checker() {
        let broken = vec![vec![0.5, 0.2], vec![0.6, 0.4]];
        let _ = kclass_bandwidth_from_pmfs(&broken, 2);
    }
}
