//! Degraded-mode analytical bandwidth: the paper's equations evaluated
//! through a [`FaultMask`].
//!
//! The paper motivates every multiple-bus scheme with its *degree* of fault
//! tolerance (Table I) but never quantifies what a failure costs. This
//! module closes that gap: it re-derives the eq (2)–(6)/(9)/(12) bandwidth
//! structure for a network observed through a fault mask, matching the
//! simulator's degraded semantics exactly:
//!
//! * requests aimed at memories with no alive bus are **dropped** (they
//!   contribute to `unreachable_load`, not to bandwidth, and they do not
//!   interfere with other memories — per-memory arbitration is
//!   independent);
//! * full connection serves `E[min(D, alive buses)]`;
//! * single connection sums busy probabilities over alive buses only;
//! * partial groups become independent subnetworks with their *surviving*
//!   bus counts;
//! * K-class networks assign each class's winners top-down over the alive
//!   buses of the class's range, so an alive bus `i` carries a class-`c`
//!   contender with probability `P(D_c > A_c(i))` where `A_c(i)` counts the
//!   alive buses above `i` that class `c` can also reach. With no failures
//!   `A_c(i)` equals the paper's eq (11) allowance `j − a`, and the whole
//!   computation reduces to [`crate::bandwidth::analyze`] (asserted in the
//!   tests).
//!
//! The same independence approximation as the healthy-mode analysis
//! applies: per-memory request indicators are treated as independent across
//! modules. The cross-validation suite pins the result against
//! fault-scheduled simulation.

use crate::bandwidth::{poisson_binomial, validate};
use crate::AnalysisError;
use mbus_stats::prob::check;
use mbus_topology::{BusNetwork, ConnectionScheme, DegradedView, FaultMask};
use mbus_workload::RequestMatrix;
use serde::{Deserialize, Serialize};

/// A degraded-mode bandwidth result with its derived quantities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedBreakdown {
    /// Effective memory bandwidth under the mask: expected successful
    /// requests per cycle.
    pub bandwidth: f64,
    /// Offered load `Σ_p r·Σ_j prob(p,j)`: expected issued requests per
    /// cycle (unchanged by faults — processors keep issuing).
    pub offered_load: f64,
    /// Probability a request is accepted, `bandwidth / offered_load`
    /// (1 when nothing is offered).
    pub acceptance: f64,
    /// Expected requests per cycle aimed at unreachable memories (dropped
    /// before arbitration) — the analytical counterpart of the simulator's
    /// `unreachable_rate`.
    pub unreachable_load: f64,
    /// Number of memories still reachable under the mask.
    pub accessible_memories: usize,
    /// Fraction of memories still reachable, in `[0, 1]`.
    pub accessible_fraction: f64,
    /// Per-bus busy probabilities, length `B`; failed buses report 0. For
    /// full-connection networks the scheme's round-robin arbiter spreads
    /// load symmetrically over the alive buses, so each alive bus gets the
    /// mean; the crossbar (no shared buses) reports an empty vector.
    pub per_bus_busy: Vec<f64>,
    /// For K-class networks: expected requests served per cycle *per
    /// class*, `C_1` first. `None` for other schemes. Class `C_j` reaches
    /// exactly 0 once all `j + B − K` of its buses are failed, while higher
    /// classes stay positive — Table I's "flexible" fault tolerance made
    /// quantitative.
    pub per_class_bandwidth: Option<Vec<f64>>,
}

/// Degraded-mode effective memory bandwidth of `net` under `mask`.
///
/// # Errors
///
/// Same as [`degraded_analyze`].
pub fn degraded_bandwidth(
    net: &BusNetwork,
    matrix: &RequestMatrix,
    r: f64,
    mask: &FaultMask,
) -> Result<f64, AnalysisError> {
    Ok(degraded_analyze(net, matrix, r, mask)?.bandwidth)
}

/// Full degraded-mode breakdown of `net` under the workload `matrix` at
/// request rate `r`, observed through `mask`.
///
/// With an all-alive mask this agrees with
/// [`crate::bandwidth::analyze`] to floating-point noise.
///
/// # Errors
///
/// * network/workload dimension mismatch →
///   [`AnalysisError::DimensionMismatch`];
/// * `r ∉ [0, 1]` → [`AnalysisError::InvalidRate`];
/// * mask covering a different bus count than the network →
///   [`AnalysisError::Topology`];
/// * schemes outside the paper's five → [`AnalysisError::UnsupportedScheme`].
pub fn degraded_analyze(
    net: &BusNetwork,
    matrix: &RequestMatrix,
    r: f64,
    mask: &FaultMask,
) -> Result<DegradedBreakdown, AnalysisError> {
    validate(net, matrix)?;
    if !r.is_finite() || !(0.0..=1.0).contains(&r) {
        return Err(AnalysisError::InvalidRate { value: r });
    }
    let view = DegradedView::new(net, mask)?;
    let xs = matrix.memory_request_probs(r)?;
    let offered_load = matrix.offered_load(r);

    // Requests to unreachable memories are dropped before arbitration; the
    // expected dropped load is the per-processor traffic into those
    // columns. Reachable memories keep their exact X_j: dropping a request
    // removes it from *its own* (dead) memory's arbitration only.
    let mut unreachable_load = 0.0;
    for j in 0..net.memories() {
        if !view.is_memory_accessible(j) {
            for p in 0..net.processors() {
                unreachable_load += r * matrix.prob(p, j);
            }
        }
    }

    let b = net.buses();
    let (bandwidth, per_bus_busy, per_class_bandwidth) = match net.scheme() {
        // The crossbar has no shared buses to fail.
        ConnectionScheme::Crossbar => (xs.iter().sum(), Vec::new(), None),
        // Full connection: every memory rides any alive bus, so the network
        // behaves like a healthy one with `alive` buses.
        ConnectionScheme::Full => {
            let alive = mask.alive_count();
            if alive == 0 {
                (0.0, vec![0.0; b], None)
            } else {
                let pb = poisson_binomial(&xs)?;
                let total = pb.expected_min_with(alive);
                // Round-robin rotation spreads grants evenly over alive
                // buses; failed buses carry nothing.
                let share = total / alive as f64;
                let busy = (0..b)
                    .map(|bus| if mask.is_alive(bus) { share } else { 0.0 })
                    .collect();
                (total, busy, None)
            }
        }
        // Single connection: a bus is busy iff alive and any of its own
        // modules is requested; a failed bus's modules are unreachable.
        ConnectionScheme::Single { .. } => {
            let busy: Vec<f64> = (0..b)
                .map(|bus| {
                    if mask.is_failed(bus) {
                        return 0.0;
                    }
                    let idle: f64 = net.memories_of_bus(bus).map(|j| 1.0 - xs[j]).product();
                    1.0 - idle
                })
                .collect();
            (busy.iter().sum(), busy, None)
        }
        // Partial groups: independent subnetworks, each serving
        // E[min(D_q, alive_q)] on its surviving buses.
        ConnectionScheme::PartialGroups { groups } => {
            let g = *groups;
            let per_group_mem = net.memories() / g;
            let per_group_bus = b / g;
            let mut total = 0.0;
            let mut busy = vec![0.0; b];
            for q in 0..g {
                let group_buses = q * per_group_bus..(q + 1) * per_group_bus;
                let alive = group_buses.clone().filter(|&i| mask.is_alive(i)).count();
                if alive == 0 {
                    continue;
                }
                let slice = &xs[q * per_group_mem..(q + 1) * per_group_mem];
                let pb = poisson_binomial(slice)?;
                let group_bw = pb.expected_min_with(alive);
                total += group_bw;
                let share = group_bw / alive as f64;
                for i in group_buses.filter(|&i| mask.is_alive(i)) {
                    busy[i] = share;
                }
            }
            (total, busy, None)
        }
        // K classes: top-down assignment over each class's *alive* buses.
        ConnectionScheme::KClasses { class_sizes } => {
            let k = class_sizes.len();
            let mut pmfs = Vec::with_capacity(k);
            for c in 0..k {
                // lint:allow(no_panic, class ranges exist for every class index; BusNetwork::new validated the K-class layout)
                let range = net.memories_of_class(c).expect("validated K-class");
                let pb = poisson_binomial(&xs[range])?;
                pmfs.push(pb.pmf_slice().to_vec());
            }
            // contender[i][c] = P(an alive bus i holds a class-c winner):
            // class c reaches buses 0..kclass_bus_count(c) and fills its
            // alive ones top-down, so bus i is reached once the class has
            // more winners than alive buses above i.
            let mut contender = vec![vec![0.0f64; k]; b];
            for (c, pmf) in pmfs.iter().enumerate() {
                let top = net.kclass_bus_count(c);
                for (i, row) in contender.iter_mut().enumerate().take(top) {
                    if mask.is_failed(i) {
                        continue;
                    }
                    let above = (i + 1..top).filter(|&j| mask.is_alive(j)).count();
                    // P(D_c ≤ above), summed like the healthy path so the
                    // no-fault case reproduces it to float parity.
                    let cdf: f64 = pmf.iter().take(above + 1).sum();
                    row[c] = 1.0 - cdf.min(1.0);
                }
            }
            let busy: Vec<f64> = (0..b)
                .map(|i| {
                    if mask.is_failed(i) {
                        return 0.0;
                    }
                    let idle: f64 = contender[i].iter().map(|&p| 1.0 - p).product();
                    1.0 - idle
                })
                .collect();
            // Per-class service: class c wins bus i with probability
            // p_c(i)·E[1/(1+T)], T the number of *other* classes contending
            // at i (cross-class ties broken uniformly by the arbiter).
            let mut per_class = vec![0.0f64; k];
            for (i, row) in contender.iter().enumerate() {
                if mask.is_failed(i) {
                    continue;
                }
                for c in 0..k {
                    let p_c = row[c];
                    if p_c == 0.0 {
                        continue;
                    }
                    let others: Vec<f64> = (0..k).filter(|&o| o != c).map(|o| row[o]).collect();
                    let t = poisson_binomial(&others)?;
                    let win: f64 = t
                        .pmf_slice()
                        .iter()
                        .enumerate()
                        .map(|(extra, &p)| p / (extra as f64 + 1.0))
                        .sum();
                    per_class[c] += p_c * win;
                }
            }
            debug_assert!(
                (per_class.iter().sum::<f64>() - busy.iter().sum::<f64>()).abs() < 1e-9,
                "per-class decomposition must resum to total bandwidth"
            );
            (busy.iter().sum(), busy, Some(per_class))
        }
        other => {
            return Err(AnalysisError::UnsupportedScheme {
                scheme: other.kind().to_string(),
            })
        }
    };

    let acceptance = if offered_load > 0.0 {
        bandwidth / offered_load
    } else {
        1.0
    };
    check::assert_probability("degraded acceptance probability", acceptance);
    check::assert_probability("accessible memory fraction", view.accessible_fraction());
    check::assert_probabilities("degraded per-bus busy probabilities", &per_bus_busy);
    // A degraded network serves at most min(alive buses, N, M) requests per
    // cycle (the crossbar has no shared buses to fail, so it keeps min(N, M)).
    let alive_capacity = match net.kind() {
        mbus_topology::SchemeKind::Crossbar => net.capacity(),
        _ => mask.alive_count(),
    };
    check::assert_bandwidth_bounds(bandwidth, alive_capacity, net.processors(), net.memories());
    Ok(DegradedBreakdown {
        bandwidth,
        offered_load,
        acceptance,
        unreachable_load,
        accessible_memories: view.accessible_memory_count(),
        accessible_fraction: view.accessible_fraction(),
        per_bus_busy,
        per_class_bandwidth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::analyze;
    use mbus_workload::{HierarchicalModel, RequestModel, UniformModel};

    fn hier_matrix(n: usize) -> RequestMatrix {
        HierarchicalModel::two_level_paired(n, 4, [0.6, 0.3, 0.1])
            .unwrap()
            .matrix()
    }

    fn schemes(n: usize, b: usize) -> Vec<(&'static str, ConnectionScheme)> {
        vec![
            ("full", ConnectionScheme::Full),
            ("single", ConnectionScheme::balanced_single(n, b).unwrap()),
            ("partial", ConnectionScheme::PartialGroups { groups: 2 }),
            ("kclass", ConnectionScheme::uniform_classes(n, b).unwrap()),
        ]
    }

    #[test]
    fn no_fault_mask_reproduces_healthy_analysis() {
        let n = 16;
        let b = 4;
        let matrix = hier_matrix(n);
        for (name, scheme) in schemes(n, b) {
            let net = BusNetwork::new(n, n, b, scheme).unwrap();
            for r in [1.0, 0.6] {
                let healthy = analyze(&net, &matrix, r).unwrap();
                let degraded = degraded_analyze(&net, &matrix, r, &FaultMask::none(b)).unwrap();
                assert!(
                    (healthy.bandwidth - degraded.bandwidth).abs() < 1e-9,
                    "{name}/r={r}: {} vs {}",
                    healthy.bandwidth,
                    degraded.bandwidth
                );
                assert_eq!(degraded.unreachable_load, 0.0);
                assert_eq!(degraded.accessible_memories, n);
                assert!((degraded.acceptance - healthy.acceptance).abs() < 1e-9);
                if let Some(busy) = &healthy.per_bus_busy {
                    for (a, d) in busy.iter().zip(&degraded.per_bus_busy) {
                        assert!((a - d).abs() < 1e-12, "{name}: per-bus busy diverged");
                    }
                }
            }
        }
    }

    #[test]
    fn full_with_failures_equals_smaller_network() {
        let n = 16;
        let matrix = hier_matrix(n);
        let net = BusNetwork::new(n, n, 6, ConnectionScheme::Full).unwrap();
        for failed in 1..=5usize {
            let mask = FaultMask::with_failures(6, &(0..failed).collect::<Vec<_>>()).unwrap();
            let degraded = degraded_bandwidth(&net, &matrix, 1.0, &mask).unwrap();
            let shrunk = BusNetwork::new(n, n, 6 - failed, ConnectionScheme::Full).unwrap();
            let healthy = analyze(&shrunk, &matrix, 1.0).unwrap().bandwidth;
            assert!(
                (degraded - healthy).abs() < 1e-12,
                "{failed} failures: {degraded} vs B-{failed} healthy {healthy}"
            );
        }
        // All buses dead: zero.
        let mask = FaultMask::with_failures(6, &[0, 1, 2, 3, 4, 5]).unwrap();
        let dead = degraded_analyze(&net, &matrix, 1.0, &mask).unwrap();
        assert_eq!(dead.bandwidth, 0.0);
        assert_eq!(dead.accessible_memories, 0);
        assert!((dead.unreachable_load - dead.offered_load).abs() < 1e-12);
    }

    #[test]
    fn single_failed_bus_drops_exactly_its_modules() {
        let n = 8;
        let matrix = UniformModel::new(n, n).unwrap().matrix();
        let net =
            BusNetwork::new(n, n, 4, ConnectionScheme::balanced_single(n, 4).unwrap()).unwrap();
        let healthy = analyze(&net, &matrix, 1.0).unwrap();
        let mask = FaultMask::with_failures(4, &[0]).unwrap();
        let degraded = degraded_analyze(&net, &matrix, 1.0, &mask).unwrap();
        // Uniform traffic over a balanced placement: losing 1 of 4 buses
        // loses exactly a quarter of the busy probability mass.
        assert!((degraded.bandwidth - healthy.bandwidth * 0.75).abs() < 1e-12);
        assert_eq!(degraded.per_bus_busy[0], 0.0);
        assert_eq!(degraded.accessible_memories, 6);
        // 8 processors each sending 1/4 of their traffic to dead modules.
        assert!((degraded.unreachable_load - 8.0 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn partial_group_loss_halves_symmetric_network() {
        let n = 8;
        let matrix = UniformModel::new(n, n).unwrap().matrix();
        let net = BusNetwork::new(n, n, 4, ConnectionScheme::PartialGroups { groups: 2 }).unwrap();
        let healthy = analyze(&net, &matrix, 1.0).unwrap().bandwidth;
        let mask = FaultMask::with_failures(4, &[0, 1]).unwrap();
        let degraded = degraded_analyze(&net, &matrix, 1.0, &mask).unwrap();
        assert!((degraded.bandwidth - healthy / 2.0).abs() < 1e-12);
        assert_eq!(degraded.accessible_memories, 4);
    }

    #[test]
    fn kclass_class_dies_after_its_bus_count_fails() {
        // N = M = 8, B = K = 4: class C_j (1-based) reaches buses 0..j, so
        // it dies exactly once buses 0..j−1 (j of them? no: j + B − K = j
        // buses) are down.
        let n = 8;
        let b = 4;
        let matrix = hier_matrix(n);
        let net =
            BusNetwork::new(n, n, b, ConnectionScheme::uniform_classes(n, b).unwrap()).unwrap();
        for f in 0..=b {
            let mask = FaultMask::with_failures(b, &(0..f).collect::<Vec<_>>()).unwrap();
            let breakdown = degraded_analyze(&net, &matrix, 1.0, &mask).unwrap();
            let per_class = breakdown.per_class_bandwidth.unwrap();
            for (c, &bw) in per_class.iter().enumerate() {
                let class_buses = net.kclass_bus_count(c);
                if f >= class_buses {
                    assert_eq!(bw, 0.0, "f={f}: class C_{} must be dead", c + 1);
                } else {
                    assert!(bw > 0.0, "f={f}: class C_{} must survive", c + 1);
                }
            }
        }
    }

    #[test]
    fn kclass_high_bus_failures_are_absorbed() {
        // Failing the top bus costs bandwidth but disconnects nobody;
        // failing the bottom bus kills class C_1.
        let n = 8;
        let b = 4;
        let matrix = hier_matrix(n);
        let net =
            BusNetwork::new(n, n, b, ConnectionScheme::uniform_classes(n, b).unwrap()).unwrap();
        let high = degraded_analyze(
            &net,
            &matrix,
            1.0,
            &FaultMask::with_failures(b, &[3]).unwrap(),
        )
        .unwrap();
        let low = degraded_analyze(
            &net,
            &matrix,
            1.0,
            &FaultMask::with_failures(b, &[0]).unwrap(),
        )
        .unwrap();
        assert_eq!(high.accessible_memories, n);
        assert_eq!(high.unreachable_load, 0.0);
        assert_eq!(low.accessible_memories, n - 2);
        assert!(low.unreachable_load > 0.0);
        assert!(high.bandwidth > low.bandwidth);
    }

    #[test]
    fn crossbar_ignores_masks() {
        let n = 8;
        let matrix = hier_matrix(n);
        let net = BusNetwork::new(n, n, 1, ConnectionScheme::Crossbar).unwrap();
        let healthy = analyze(&net, &matrix, 1.0).unwrap().bandwidth;
        let mask = FaultMask::with_failures(1, &[0]).unwrap();
        let degraded = degraded_analyze(&net, &matrix, 1.0, &mask).unwrap();
        assert!((degraded.bandwidth - healthy).abs() < 1e-12);
        assert_eq!(degraded.unreachable_load, 0.0);
    }

    #[test]
    fn validation_errors() {
        let matrix = hier_matrix(8);
        let net = BusNetwork::new(8, 8, 4, ConnectionScheme::Full).unwrap();
        // Wrong mask width.
        assert!(matches!(
            degraded_analyze(&net, &matrix, 1.0, &FaultMask::none(3)),
            Err(AnalysisError::Topology(_))
        ));
        // Bad rate.
        assert!(matches!(
            degraded_analyze(&net, &matrix, 2.0, &FaultMask::none(4)),
            Err(AnalysisError::InvalidRate { .. })
        ));
        // Dimension mismatch.
        let wrong_net = BusNetwork::new(4, 8, 4, ConnectionScheme::Full).unwrap();
        assert!(matches!(
            degraded_analyze(&wrong_net, &matrix, 1.0, &FaultMask::none(4)),
            Err(AnalysisError::DimensionMismatch { .. })
        ));
    }
}
