//! Closed-form memory-bandwidth analysis of multiple-bus networks under the
//! hierarchical requesting model — the analytical core of Chen & Sheu
//! (ICDCS 1988).
//!
//! The paper's measure of performance is the **effective memory bandwidth**:
//! the expected number of successful memory requests per cycle. A request
//! succeeds when it survives both
//!
//! 1. **memory interference** — several processors racing for one module, of
//!    which exactly one is selected (per-memory arbiter), and
//! 2. **bus interference** — more selected modules than buses able to carry
//!    them (B-of-M arbiter).
//!
//! The analysis layers:
//!
//! * [`paper`] — the paper's equations verbatim, for homogeneous per-memory
//!   request probability `X`: eq (2) `X`, eq (4) `MBW_f`, eq (6) `MBW_s`,
//!   eq (9) `MBW_p`, eq (12) `MBW_p′`, plus the crossbar bound.
//! * [`bandwidth`] — the workspace's generalized dispatch: computes the
//!   *per-memory* probabilities `X_j` exactly from any
//!   [`mbus_workload::RequestMatrix`] and evaluates each scheme with
//!   Poisson-binomial bus interference, which reduces to the paper's
//!   formulas when traffic is homogeneous (tested both ways).
//! * [`degraded`] — the same evaluation through a
//!   [`mbus_topology::FaultMask`]: renormalized over alive buses,
//!   unreachable modules contributing zero, per-class K-class breakdowns.
//! * [`sweep`] — bus sweeps, halving ratios, and per-scheme series used by
//!   the table generators in `mbus-core`/`mbus-bench`.
//! * [`cost_effectiveness`] — §IV's performance-cost comparisons.
//!
//! # A worked example (Table II, N = 8, B = 4, hierarchical, r = 1)
//!
//! ```
//! use mbus_analysis::bandwidth::memory_bandwidth;
//! use mbus_topology::{BusNetwork, ConnectionScheme};
//! use mbus_workload::{HierarchicalModel, RequestModel};
//!
//! let net = BusNetwork::new(8, 8, 4, ConnectionScheme::Full)?;
//! let model = HierarchicalModel::two_level_paired(8, 4, [0.6, 0.3, 0.1])?;
//! let mbw = memory_bandwidth(&net, &model.matrix(), 1.0)?;
//! assert!((mbw - 3.97).abs() < 0.005); // the paper's printed cell
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod cost_effectiveness;
pub mod degraded;
mod error;
pub mod paper;
pub mod sweep;

pub use bandwidth::{memory_bandwidth, memory_bandwidth_from_probs, BandwidthBreakdown};
pub use degraded::{degraded_analyze, degraded_bandwidth, DegradedBreakdown};
pub use error::AnalysisError;
