//! Generalized bandwidth computation for arbitrary (possibly heterogeneous)
//! traffic.
//!
//! The paper assumes every memory module is requested with one common
//! probability `X`; under favorite-memory traffic, `N ≠ M`, or bus failures
//! this breaks down. This module computes the exact per-memory probabilities
//! `X_j` from a request matrix and evaluates every scheme with
//! Poisson-binomial bus interference. With homogeneous `X_j` it reproduces
//! the paper's equations to machine precision (asserted in the tests).

use crate::paper::kclass_bandwidth_from_pmfs;
use crate::AnalysisError;
use mbus_stats::prob::{check, PoissonBinomial};
use mbus_topology::{BusNetwork, ConnectionScheme};
use mbus_workload::RequestMatrix;
use serde::{Deserialize, Serialize};

/// A bandwidth result with its derived quantities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthBreakdown {
    /// Effective memory bandwidth: expected successful requests per cycle.
    pub bandwidth: f64,
    /// Offered load `N·r`: expected issued requests per cycle.
    pub offered_load: f64,
    /// Probability a request is accepted, `bandwidth / offered_load`
    /// (1 when nothing is offered).
    pub acceptance: f64,
    /// Per-bus busy probabilities where the scheme assigns buses
    /// deterministically (single and K-class networks); `None` for schemes
    /// whose round-robin arbiter spreads load symmetrically.
    pub per_bus_busy: Option<Vec<f64>>,
}

pub(crate) fn validate(net: &BusNetwork, matrix: &RequestMatrix) -> Result<(), AnalysisError> {
    if net.processors() != matrix.processors() {
        return Err(AnalysisError::DimensionMismatch {
            what: "processors",
            network: net.processors(),
            workload: matrix.processors(),
        });
    }
    if net.memories() != matrix.memories() {
        return Err(AnalysisError::DimensionMismatch {
            what: "memories",
            network: net.memories(),
            workload: matrix.memories(),
        });
    }
    Ok(())
}

/// Effective memory bandwidth of `net` under the workload `matrix` at
/// request rate `r`.
///
/// # Errors
///
/// * network/workload dimension mismatch →
///   [`AnalysisError::DimensionMismatch`];
/// * `r ∉ [0, 1]` → [`AnalysisError::InvalidRate`].
pub fn memory_bandwidth(
    net: &BusNetwork,
    matrix: &RequestMatrix,
    r: f64,
) -> Result<f64, AnalysisError> {
    Ok(analyze(net, matrix, r)?.bandwidth)
}

/// Full breakdown version of [`memory_bandwidth`].
///
/// # Errors
///
/// Same as [`memory_bandwidth`].
pub fn analyze(
    net: &BusNetwork,
    matrix: &RequestMatrix,
    r: f64,
) -> Result<BandwidthBreakdown, AnalysisError> {
    validate(net, matrix)?;
    if !r.is_finite() || !(0.0..=1.0).contains(&r) {
        return Err(AnalysisError::InvalidRate { value: r });
    }
    let xs = matrix.memory_request_probs(r)?;
    let (bandwidth, per_bus_busy) = bandwidth_from_probs(net, &xs)?;
    let offered_load = matrix.offered_load(r);
    let acceptance = if offered_load > 0.0 {
        bandwidth / offered_load
    } else {
        1.0
    };
    check::assert_probability("request acceptance probability", acceptance);
    check::assert_bandwidth_bounds(bandwidth, net.capacity(), net.processors(), net.memories());
    if let Some(busy) = &per_bus_busy {
        check::assert_probabilities("per-bus busy probabilities", busy);
    }
    Ok(BandwidthBreakdown {
        bandwidth,
        offered_load,
        acceptance,
        per_bus_busy,
    })
}

/// Bandwidth from precomputed per-memory request probabilities `X_j`
/// (length `M`).
///
/// # Errors
///
/// * `xs.len() ≠ M` → [`AnalysisError::DimensionMismatch`];
/// * any probability outside `[0, 1]` →
///   [`AnalysisError::InvalidProbability`].
pub fn memory_bandwidth_from_probs(net: &BusNetwork, xs: &[f64]) -> Result<f64, AnalysisError> {
    Ok(bandwidth_from_probs(net, xs)?.0)
}

pub(crate) fn poisson_binomial(xs: &[f64]) -> Result<PoissonBinomial, AnalysisError> {
    PoissonBinomial::new(xs).map_err(|_| AnalysisError::InvalidProbability {
        name: "per-memory request probability",
        value: f64::NAN,
    })
}

#[allow(clippy::type_complexity)]
fn bandwidth_from_probs(
    net: &BusNetwork,
    xs: &[f64],
) -> Result<(f64, Option<Vec<f64>>), AnalysisError> {
    if xs.len() != net.memories() {
        return Err(AnalysisError::DimensionMismatch {
            what: "memories",
            network: net.memories(),
            workload: xs.len(),
        });
    }
    for &x in xs {
        if !x.is_finite() || !(0.0..=1.0).contains(&x) {
            return Err(AnalysisError::InvalidProbability {
                name: "per-memory request probability",
                value: x,
            });
        }
    }
    let b = net.buses();
    match net.scheme() {
        // Crossbar: every requested module is served.
        ConnectionScheme::Crossbar => Ok((xs.iter().sum(), None)),
        // Full connection: E[min(D, B)] with D the number of requested
        // modules — Poisson-binomial over the X_j.
        ConnectionScheme::Full => {
            let pb = poisson_binomial(xs)?;
            Ok((pb.expected_min_with(b), None))
        }
        // Single connection: bus i is busy iff any of its modules is
        // requested. Like the paper's eq (5), the modules of a bus are
        // treated as independently requested — exact when each bus owns one
        // module (B = M), a close approximation otherwise.
        ConnectionScheme::Single { .. } => {
            let busy: Vec<f64> = (0..b)
                .map(|bus| {
                    let idle: f64 = net.memories_of_bus(bus).map(|j| 1.0 - xs[j]).product();
                    1.0 - idle
                })
                .collect();
            Ok((busy.iter().sum(), Some(busy)))
        }
        // Partial groups: independent subnetworks, E[min(D_q, B/g)] each.
        ConnectionScheme::PartialGroups { groups } => {
            let g = *groups;
            let per_group_mem = net.memories() / g;
            let mut total = 0.0;
            for q in 0..g {
                let slice = &xs[q * per_group_mem..(q + 1) * per_group_mem];
                let pb = poisson_binomial(slice)?;
                total += pb.expected_min_with(b / g);
            }
            Ok((total, None))
        }
        // K classes: per-class requested-count pmfs fed into the paper's
        // equation (12) structure; per-bus busy probabilities via eq (11).
        ConnectionScheme::KClasses { class_sizes } => {
            let k = class_sizes.len();
            let mut pmfs = Vec::with_capacity(k);
            for c in 0..k {
                // lint:allow(no_panic, class ranges exist for every class index; BusNetwork::new validated the K-class layout)
                let range = net.memories_of_class(c).expect("validated K-class");
                let pb = poisson_binomial(&xs[range])?;
                pmfs.push(pb.pmf_slice().to_vec());
            }
            let busy: Vec<f64> = (1..=b)
                .map(|i| {
                    let a = i as isize + k as isize - b as isize;
                    let mut idle = 1.0;
                    for j in 1..=k as isize {
                        if j < a {
                            continue;
                        }
                        let allowance = (j - a) as usize;
                        let partial: f64 = pmfs[(j - 1) as usize].iter().take(allowance + 1).sum();
                        idle *= partial.min(1.0);
                    }
                    1.0 - idle
                })
                .collect();
            let total = kclass_bandwidth_from_pmfs(&pmfs, b);
            debug_assert!((total - busy.iter().sum::<f64>()).abs() < 1e-9);
            Ok((total, Some(busy)))
        }
        // `ConnectionScheme` is non-exhaustive; future variants must be
        // wired up here explicitly.
        other => Err(AnalysisError::UnsupportedScheme {
            scheme: other.kind().to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use mbus_workload::{FavoriteModel, HierarchicalModel, RequestModel, UniformModel};

    fn hier_matrix(n: usize) -> RequestMatrix {
        HierarchicalModel::two_level_paired(n, 4, [0.6, 0.3, 0.1])
            .unwrap()
            .matrix()
    }

    #[test]
    fn full_matches_paper_equation_on_homogeneous_traffic() {
        for n in [8usize, 12, 16] {
            let matrix = hier_matrix(n);
            let x = matrix.memory_request_prob(0, 1.0).unwrap();
            for b in 1..=n {
                let net = BusNetwork::new(n, n, b, ConnectionScheme::Full).unwrap();
                let general = memory_bandwidth(&net, &matrix, 1.0).unwrap();
                let closed = paper::eq4_full_bandwidth(n, b, x).unwrap();
                assert!(
                    (general - closed).abs() < 1e-9,
                    "N={n} B={b}: {general} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn single_matches_paper_equation() {
        let n = 16;
        let matrix = hier_matrix(n);
        let x = matrix.memory_request_prob(0, 0.5).unwrap();
        for b in [1, 2, 4, 8, 16] {
            let net =
                BusNetwork::new(n, n, b, ConnectionScheme::balanced_single(n, b).unwrap()).unwrap();
            let general = memory_bandwidth(&net, &matrix, 0.5).unwrap();
            let closed = paper::eq6_single_bandwidth(&vec![n / b; b], x).unwrap();
            assert!((general - closed).abs() < 1e-9, "B={b}");
        }
    }

    #[test]
    fn partial_matches_paper_equation() {
        let n = 32;
        let matrix = hier_matrix(n);
        let x = matrix.memory_request_prob(0, 1.0).unwrap();
        for b in [2, 4, 8, 16, 32] {
            let net =
                BusNetwork::new(n, n, b, ConnectionScheme::PartialGroups { groups: 2 }).unwrap();
            let general = memory_bandwidth(&net, &matrix, 1.0).unwrap();
            let closed = paper::eq9_partial_bandwidth(n, b, 2, x).unwrap();
            assert!((general - closed).abs() < 1e-9, "B={b}");
        }
    }

    #[test]
    fn kclass_matches_paper_equation() {
        let n = 16;
        let matrix = hier_matrix(n);
        let x = matrix.memory_request_prob(0, 1.0).unwrap();
        for b in [2, 4, 8] {
            let net =
                BusNetwork::new(n, n, b, ConnectionScheme::uniform_classes(n, b).unwrap()).unwrap();
            let general = memory_bandwidth(&net, &matrix, 1.0).unwrap();
            let closed = paper::eq12_kclass_bandwidth(&vec![n / b; b], b, x).unwrap();
            assert!((general - closed).abs() < 1e-9, "B={b}");
        }
    }

    #[test]
    fn crossbar_is_sum_of_request_probs() {
        let matrix = UniformModel::new(8, 8).unwrap().matrix();
        let net = BusNetwork::new(8, 8, 8, ConnectionScheme::Crossbar).unwrap();
        let bw = memory_bandwidth(&net, &matrix, 1.0).unwrap();
        let expected = 8.0 * paper::uniform_request_probability(8, 8, 1.0).unwrap();
        assert!((bw - expected).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_traffic_shifts_bandwidth() {
        // 8 processors all favoring low memories: the K-class network with
        // hot modules in the *high* (well-connected) classes should beat the
        // one with hot modules in the low classes. Class order is fixed
        // (C_1 first), so we steer the heat by choosing favorites.
        let n = 8;
        let b = 4;
        let net =
            BusNetwork::new(n, n, b, ConnectionScheme::uniform_classes(n, b).unwrap()).unwrap();
        // Hot memories 6, 7 (class C_4, 4 buses) vs hot memories 0, 1
        // (class C_1, 1 bus).
        let hot_high = RequestMatrix::from_rows(vec![
            {
                let mut row = vec![0.02; n];
                row[6] = 0.44;
                row[7] = 0.44;
                row
            };
            n
        ])
        .unwrap();
        let hot_low = RequestMatrix::from_rows(vec![
            {
                let mut row = vec![0.02; n];
                row[0] = 0.44;
                row[1] = 0.44;
                row
            };
            n
        ])
        .unwrap();
        let bw_high = memory_bandwidth(&net, &hot_high, 1.0).unwrap();
        let bw_low = memory_bandwidth(&net, &hot_low, 1.0).unwrap();
        assert!(
            bw_high > bw_low,
            "hot modules on more buses must win: {bw_high} vs {bw_low}"
        );
    }

    #[test]
    fn favorite_model_with_unequal_counts() {
        // N = 12 processors, M = 8 memories: heterogeneous X_j exercise the
        // Poisson-binomial path end to end.
        let model = FavoriteModel::new(12, 8, 0.4).unwrap();
        let matrix = model.matrix();
        let net = BusNetwork::new(12, 8, 4, ConnectionScheme::Full).unwrap();
        let breakdown = analyze(&net, &matrix, 0.8).unwrap();
        assert!(breakdown.bandwidth > 0.0 && breakdown.bandwidth <= 4.0);
        assert!((breakdown.offered_load - 9.6).abs() < 1e-12);
        assert!(breakdown.acceptance <= 1.0);
    }

    #[test]
    fn breakdown_reports_per_bus_busy_for_deterministic_schemes() {
        let n = 8;
        let matrix = hier_matrix(n);
        let single =
            BusNetwork::new(n, n, 4, ConnectionScheme::balanced_single(n, 4).unwrap()).unwrap();
        let b1 = analyze(&single, &matrix, 1.0).unwrap();
        let busy = b1.per_bus_busy.unwrap();
        assert_eq!(busy.len(), 4);
        assert!((busy.iter().sum::<f64>() - b1.bandwidth).abs() < 1e-12);

        let kclass =
            BusNetwork::new(n, n, 4, ConnectionScheme::uniform_classes(n, 4).unwrap()).unwrap();
        let b2 = analyze(&kclass, &matrix, 1.0).unwrap();
        let busy = b2.per_bus_busy.unwrap();
        assert_eq!(busy.len(), 4);
        // Low buses are connected to more classes, so they are busier.
        assert!(busy[0] >= busy[3]);

        let full = BusNetwork::new(n, n, 4, ConnectionScheme::Full).unwrap();
        assert!(analyze(&full, &matrix, 1.0).unwrap().per_bus_busy.is_none());
    }

    #[test]
    fn zero_rate_yields_zero_bandwidth() {
        let matrix = hier_matrix(8);
        let net = BusNetwork::new(8, 8, 4, ConnectionScheme::Full).unwrap();
        let breakdown = analyze(&net, &matrix, 0.0).unwrap();
        assert_eq!(breakdown.bandwidth, 0.0);
        assert_eq!(breakdown.acceptance, 1.0);
    }

    #[test]
    fn validation_errors() {
        let matrix = hier_matrix(8);
        let wrong_net = BusNetwork::new(4, 8, 4, ConnectionScheme::Full).unwrap();
        assert!(matches!(
            memory_bandwidth(&wrong_net, &matrix, 1.0),
            Err(AnalysisError::DimensionMismatch { .. })
        ));
        let net = BusNetwork::new(8, 8, 4, ConnectionScheme::Full).unwrap();
        assert!(matches!(
            memory_bandwidth(&net, &matrix, 2.0),
            Err(AnalysisError::InvalidRate { .. })
        ));
        assert!(memory_bandwidth_from_probs(&net, &[0.5; 7]).is_err());
        assert!(memory_bandwidth_from_probs(&net, &[1.5; 8]).is_err());
    }

    #[test]
    fn scheme_ordering_full_beats_partial_beats_single() {
        // §IV's qualitative conclusion at equal N, B.
        let n = 16;
        let b = 8;
        let matrix = hier_matrix(n);
        let bw = |scheme| {
            memory_bandwidth(&BusNetwork::new(n, n, b, scheme).unwrap(), &matrix, 1.0).unwrap()
        };
        let full = bw(ConnectionScheme::Full);
        let partial = bw(ConnectionScheme::PartialGroups { groups: 2 });
        let kclass = bw(ConnectionScheme::uniform_classes(n, b).unwrap());
        let single = bw(ConnectionScheme::balanced_single(n, b).unwrap());
        assert!(full >= partial && partial >= single);
        assert!(full >= kclass && kclass >= single);
    }
}
