//! Performance–cost comparisons (§IV's concluding analysis).

use crate::{bandwidth, AnalysisError};
use mbus_topology::BusNetwork;
use mbus_workload::RequestMatrix;
use serde::{Deserialize, Serialize};

/// One network's combined performance / cost / fault-tolerance figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostEffectiveness {
    /// Scheme name.
    pub scheme: String,
    /// Effective memory bandwidth.
    pub bandwidth: f64,
    /// Number of connections (the paper's cost measure).
    pub connections: usize,
    /// Bandwidth per connection — the paper's performance-cost ratio
    /// (scaled by 1000 in [`CostEffectiveness::ratio_per_kiloconnection`]
    /// for readability).
    pub ratio: f64,
    /// Degree of fault tolerance.
    pub fault_tolerance: usize,
}

impl CostEffectiveness {
    /// Bandwidth per 1000 connections.
    pub fn ratio_per_kiloconnection(&self) -> f64 {
        self.ratio * 1000.0
    }
}

/// Evaluates bandwidth, cost, and fault tolerance for each network under a
/// common workload, enabling the paper's §IV cross-scheme comparison.
///
/// # Errors
///
/// Propagates bandwidth-computation errors.
pub fn compare(
    networks: &[BusNetwork],
    matrix: &RequestMatrix,
    r: f64,
) -> Result<Vec<CostEffectiveness>, AnalysisError> {
    networks
        .iter()
        .map(|net| {
            let bw = bandwidth::memory_bandwidth(net, matrix, r)?;
            let cost = net.cost();
            Ok(CostEffectiveness {
                scheme: net.kind().to_string(),
                bandwidth: bw,
                connections: cost.connections,
                ratio: cost.performance_cost_ratio(bw),
                fault_tolerance: cost.fault_tolerance_degree,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbus_topology::ConnectionScheme;
    use mbus_workload::{HierarchicalModel, RequestModel};

    #[test]
    fn paper_section_four_conclusions() {
        // N = 16, B = 8, hierarchical r = 1.0.
        let n = 16;
        let b = 8;
        let matrix = HierarchicalModel::two_level_paired(n, 4, [0.6, 0.3, 0.1])
            .unwrap()
            .matrix();
        let networks = vec![
            BusNetwork::new(n, n, b, ConnectionScheme::Full).unwrap(),
            BusNetwork::new(n, n, b, ConnectionScheme::PartialGroups { groups: 2 }).unwrap(),
            BusNetwork::new(n, n, b, ConnectionScheme::uniform_classes(n, b).unwrap()).unwrap(),
            BusNetwork::new(n, n, b, ConnectionScheme::balanced_single(n, b).unwrap()).unwrap(),
        ];
        let rows = compare(&networks, &matrix, 1.0).unwrap();
        let by_name = |name: &str| rows.iter().find(|r| r.scheme.contains(name)).unwrap();
        let full = by_name("full");
        let partial = by_name("partial bus network");
        let single = by_name("single");
        // "The network with single bus-memory connection is the most
        // cost-effective…"
        assert!(single.ratio > partial.ratio);
        assert!(single.ratio > full.ratio);
        // "…but it lacks fault tolerance."
        assert_eq!(single.fault_tolerance, 0);
        // "The performance of the networks with full bus-memory connection
        // is higher … but less cost-effective."
        assert!(full.bandwidth > partial.bandwidth);
        assert!(full.ratio < partial.ratio);
        // Partial schemes sit between single and full in cost.
        assert!(single.connections < partial.connections);
        assert!(partial.connections < full.connections);
    }

    #[test]
    fn kclass_and_partial_are_close() {
        // §IV: "The memory bandwidths of both networks are also very close"
        // and the K-class connection cost is "nearly equal" to g = 2.
        let n = 32;
        let b = 8;
        let matrix = HierarchicalModel::two_level_paired(n, 4, [0.6, 0.3, 0.1])
            .unwrap()
            .matrix();
        let networks = vec![
            BusNetwork::new(n, n, b, ConnectionScheme::PartialGroups { groups: 2 }).unwrap(),
            BusNetwork::new(n, n, b, ConnectionScheme::uniform_classes(n, b).unwrap()).unwrap(),
        ];
        let rows = compare(&networks, &matrix, 1.0).unwrap();
        let rel_bw = (rows[0].bandwidth - rows[1].bandwidth).abs() / rows[0].bandwidth;
        assert!(rel_bw < 0.05, "bandwidth gap {rel_bw}");
        let rel_cost = (rows[0].connections as f64 - rows[1].connections as f64).abs()
            / rows[0].connections as f64;
        assert!(rel_cost < 0.1, "cost gap {rel_cost}");
    }
}
