//! Error type for the analytical models.

use mbus_topology::TopologyError;
use mbus_workload::WorkloadError;

/// Error returned by bandwidth computations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The request rate `r` must lie in `[0, 1]`.
    InvalidRate {
        /// The offending value.
        value: f64,
    },
    /// A probability input was outside `[0, 1]`.
    InvalidProbability {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The workload and network disagree on a dimension.
    DimensionMismatch {
        /// What disagreed ("processors", "memories", …).
        what: &'static str,
        /// The network's count.
        network: usize,
        /// The workload's count.
        workload: usize,
    },
    /// An underlying workload computation failed.
    Workload(WorkloadError),
    /// Building a network for an analysis point failed (e.g. an invalid
    /// bus count or class layout during a sweep).
    Topology(TopologyError),
    /// The connection scheme is not supported by this analysis (future
    /// scheme variants).
    UnsupportedScheme {
        /// Display name of the scheme.
        scheme: String,
    },
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidRate { value } => {
                write!(f, "request rate r = {value} must lie in [0, 1]")
            }
            Self::InvalidProbability { name, value } => {
                write!(f, "{name} = {value} must lie in [0, 1]")
            }
            Self::DimensionMismatch {
                what,
                network,
                workload,
            } => write!(
                f,
                "network has {network} {what} but the workload describes {workload}"
            ),
            Self::Workload(err) => write!(f, "workload error: {err}"),
            Self::Topology(err) => write!(f, "topology error: {err}"),
            Self::UnsupportedScheme { scheme } => {
                write!(
                    f,
                    "connection scheme '{scheme}' is not supported by this analysis"
                )
            }
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Workload(err) => Some(err),
            Self::Topology(err) => Some(err),
            _ => None,
        }
    }
}

impl From<WorkloadError> for AnalysisError {
    fn from(err: WorkloadError) -> Self {
        Self::Workload(err)
    }
}

impl From<TopologyError> for AnalysisError {
    fn from(err: TopologyError) -> Self {
        Self::Topology(err)
    }
}
