//! Parameter sweeps and the derived ratios quoted in the paper's §IV.
//!
//! Sweep points are independent, so [`bus_sweep`] evaluates them over the
//! work-stealing pool via
//! [`mbus_stats::parallel::parallel_map_dynamic`] — per-point cost grows
//! with `B`, so stealing keeps the tail of a sweep from serializing on one
//! worker. Results come back in input order, and errors are reported for
//! the *first failing point* in input order regardless of which thread hit
//! one first, keeping the function deterministic.

use crate::{bandwidth, AnalysisError};
use mbus_stats::parallel::{available_workers, parallel_map_dynamic};
use mbus_topology::{BusNetwork, ConnectionScheme, TopologyError};
use mbus_workload::RequestMatrix;
use serde::{Deserialize, Serialize};

/// One point of a bus sweep: bandwidth at a given bus count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of buses `B`.
    pub buses: usize,
    /// Effective memory bandwidth at that `B`.
    pub bandwidth: f64,
}

/// Builds the scheme instance to use at a given bus count during a sweep.
///
/// Sweeps vary `B`, but some schemes' parameters depend on `B` (a balanced
/// single assignment, `K = B` classes, …), so the sweep asks this factory at
/// every point. Factories must be `Sync`: sweep points are evaluated on
/// multiple threads.
pub type SchemeFactory<'a> = dyn Fn(usize) -> Result<ConnectionScheme, TopologyError> + Sync + 'a;

/// Sweeps the analytical bandwidth over bus counts `bus_counts` for an
/// `n × m` network whose scheme at each `B` is produced by `factory`,
/// evaluating the points across all available cores.
///
/// # Errors
///
/// Scheme/network construction failures surface as
/// [`AnalysisError::Topology`]; bandwidth errors are propagated as-is. When
/// several points fail, the error of the first failing point (in
/// `bus_counts` order) is returned.
pub fn bus_sweep(
    n: usize,
    m: usize,
    bus_counts: &[usize],
    factory: &SchemeFactory<'_>,
    matrix: &RequestMatrix,
    r: f64,
) -> Result<Vec<SweepPoint>, AnalysisError> {
    bus_sweep_with_workers(n, m, bus_counts, factory, matrix, r, available_workers())
}

/// [`bus_sweep`] with an explicit worker-thread budget (`workers <= 1`
/// evaluates serially on the calling thread). Exposed for benchmarking the
/// parallel speedup and for callers that manage their own thread budget.
///
/// # Errors
///
/// Same contract as [`bus_sweep`].
pub fn bus_sweep_with_workers(
    n: usize,
    m: usize,
    bus_counts: &[usize],
    factory: &SchemeFactory<'_>,
    matrix: &RequestMatrix,
    r: f64,
    workers: usize,
) -> Result<Vec<SweepPoint>, AnalysisError> {
    let points = parallel_map_dynamic(bus_counts.to_vec(), workers, |b| {
        let net = BusNetwork::new(n, m, b, factory(b)?)?;
        Ok(SweepPoint {
            buses: b,
            bandwidth: bandwidth::memory_bandwidth(&net, matrix, r)?,
        })
    });
    points.into_iter().collect()
}

/// The §IV "bus halving" ratio: bandwidth with `N` buses divided by
/// bandwidth with `N/2` buses, for a single-connection network.
///
/// The paper reports ≈1.5 (uniform, r = 1), ≈1.2 (uniform, r = 0.5),
/// ≈1.6 (hierarchical, r = 1), and ≈1.28 (hierarchical, r = 0.5).
///
/// # Errors
///
/// Propagates bandwidth-computation errors.
pub fn single_connection_halving_ratio(
    n: usize,
    matrix: &RequestMatrix,
    r: f64,
) -> Result<f64, AnalysisError> {
    let at = |b: usize| -> Result<f64, AnalysisError> {
        let net = BusNetwork::new(n, n, b, ConnectionScheme::balanced_single(n, b)?)?;
        bandwidth::memory_bandwidth(&net, matrix, r)
    };
    Ok(at(n)? / at(n / 2)?)
}

/// Finds the smallest bus count whose full-connection bandwidth reaches
/// `fraction` of the crossbar bandwidth — the paper's "how many buses do you
/// actually need" question (§IV: N/2 buses suffice when r = 0.5).
///
/// # Errors
///
/// Propagates bandwidth-computation errors.
pub fn buses_for_crossbar_fraction(
    n: usize,
    matrix: &RequestMatrix,
    r: f64,
    fraction: f64,
) -> Result<usize, AnalysisError> {
    if !(0.0..=1.0).contains(&fraction) || !fraction.is_finite() {
        return Err(AnalysisError::InvalidProbability {
            name: "crossbar fraction",
            value: fraction,
        });
    }
    let xbar = {
        let net = BusNetwork::new(n, n, n, ConnectionScheme::Crossbar).map_err(AnalysisError::from)?;
        bandwidth::memory_bandwidth(&net, matrix, r)?
    };
    for b in 1..=n {
        let net = BusNetwork::new(n, n, b, ConnectionScheme::Full).map_err(AnalysisError::from)?;
        if bandwidth::memory_bandwidth(&net, matrix, r)? >= fraction * xbar {
            return Ok(b);
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbus_workload::{HierarchicalModel, RequestModel, UniformModel};

    fn hier(n: usize) -> RequestMatrix {
        HierarchicalModel::two_level_paired(n, 4, [0.6, 0.3, 0.1])
            .unwrap()
            .matrix()
    }

    fn unif(n: usize) -> RequestMatrix {
        UniformModel::new(n, n).unwrap().matrix()
    }

    #[test]
    fn sweep_is_monotone_in_buses() {
        let matrix = hier(16);
        let points = bus_sweep(
            16,
            16,
            &[1, 2, 4, 8, 16],
            &|_| Ok(ConnectionScheme::Full),
            &matrix,
            1.0,
        )
        .unwrap();
        for pair in points.windows(2) {
            assert!(pair[1].bandwidth >= pair[0].bandwidth - 1e-12);
        }
        assert_eq!(points[0].buses, 1);
        assert!(
            (points[0].bandwidth - 1.0).abs() < 1e-9,
            "one bus saturates"
        );
    }

    #[test]
    fn paper_halving_ratios() {
        // §IV quotes "nearly 1.5", "1.2", "almost 1.6", "1.28" for the
        // single-connection network. The precise values implied by the
        // paper's own Table IV at N = 32 are 20.41/13.90 = 1.468,
        // 12.67/10.16 = 1.247, 23.48/14.87 = 1.579, 13.69/10.76 = 1.272.
        let cases = [
            (unif(32), 1.0, 1.468, 0.01),
            (unif(32), 0.5, 1.247, 0.01),
            (hier(32), 1.0, 1.579, 0.01),
            (hier(32), 0.5, 1.272, 0.01),
        ];
        for (matrix, r, expected, tol) in cases {
            let ratio = single_connection_halving_ratio(32, &matrix, r).unwrap();
            assert!(
                (ratio - expected).abs() < tol,
                "r={r}: ratio {ratio} vs paper's ~{expected}"
            );
        }
    }

    #[test]
    fn half_the_buses_suffice_at_half_rate() {
        // §IV: "for r = 0.5 … the network with B = N/2 buses performs close
        // to that of network with B = N buses."
        // "Close" in the paper's Table III sense: B = 8 reaches ~95% of the
        // crossbar at r = 0.5 (6.52 of 6.87) but only ~68% at r = 1.0.
        let n = 16;
        let needed = buses_for_crossbar_fraction(n, &hier(n), 0.5, 0.94).unwrap();
        assert!(needed <= n / 2, "needed {needed} buses");
        // At r = 1.0 that is no longer true.
        let needed_full_rate = buses_for_crossbar_fraction(n, &hier(n), 1.0, 0.94).unwrap();
        assert!(needed_full_rate > n / 2);
    }

    #[test]
    fn factory_errors_are_reported() {
        let matrix = hier(8);
        let result = bus_sweep(
            8,
            8,
            &[3],
            &|b| ConnectionScheme::balanced_single(8, b),
            &matrix,
            1.0,
        );
        assert!(result.is_ok());
        // A factory that demands indivisible groups fails cleanly, with the
        // underlying topology error preserved (not remapped to a bogus
        // dimension mismatch).
        let result = bus_sweep(
            8,
            8,
            &[3],
            &|_| Ok(ConnectionScheme::PartialGroups { groups: 2 }),
            &matrix,
            1.0,
        );
        assert!(matches!(
            result,
            Err(AnalysisError::Topology(
                mbus_topology::TopologyError::GroupsDontDivide { .. }
            ))
        ));
    }

    #[test]
    fn first_failing_point_wins_deterministically() {
        // Two bad points (B = 3 and B = 100): the error must belong to the
        // earliest one in input order, however the threads interleave.
        let matrix = hier(8);
        let result = bus_sweep(
            8,
            8,
            &[2, 3, 4, 100],
            &|_| Ok(ConnectionScheme::PartialGroups { groups: 2 }),
            &matrix,
            1.0,
        );
        match result {
            Err(AnalysisError::Topology(mbus_topology::TopologyError::GroupsDontDivide {
                buses,
                ..
            })) => assert_eq!(buses, 3),
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let matrix = hier(16);
        let counts = [1, 2, 3, 4, 6, 8, 12, 16];
        let factory: &SchemeFactory<'_> = &|_| Ok(ConnectionScheme::Full);
        let serial = bus_sweep_with_workers(16, 16, &counts, factory, &matrix, 0.75, 1).unwrap();
        let parallel = bus_sweep_with_workers(16, 16, &counts, factory, &matrix, 0.75, 8).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn fraction_validation() {
        assert!(buses_for_crossbar_fraction(8, &hier(8), 1.0, 1.5).is_err());
    }
}
