//! Property-based tests for the closed-form bandwidth equations.

use mbus_analysis::paper::{
    crossbar_bandwidth, eq12_kclass_bandwidth, eq2_request_probability, eq4_full_bandwidth,
    eq6_single_bandwidth, eq9_partial_bandwidth, kclass_bandwidth_from_pmfs,
    uniform_request_probability,
};
use mbus_workload::{Fractions, Hierarchy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Equation (4) is bounded by B, by M·X, and is monotone in both B and
    /// X.
    #[test]
    fn eq4_bounds_and_monotonicity(m in 1usize..64, b in 1usize..64, x in 0.0f64..=1.0) {
        let b = b.min(m);
        let bw = eq4_full_bandwidth(m, b, x).unwrap();
        prop_assert!(bw >= -1e-12);
        prop_assert!(bw <= b as f64 + 1e-9);
        prop_assert!(bw <= m as f64 * x + 1e-9);
        if b < m {
            prop_assert!(eq4_full_bandwidth(m, b + 1, x).unwrap() >= bw - 1e-12);
        }
        let x2 = (x + 0.01).min(1.0);
        prop_assert!(eq4_full_bandwidth(m, b, x2).unwrap() >= bw - 1e-12);
    }

    /// Equation (6) is bounded by the bus count and by Σ Mᵢ·X.
    #[test]
    fn eq6_bounds(per_bus in proptest::collection::vec(1usize..8, 1..8), x in 0.0f64..=1.0) {
        let bw = eq6_single_bandwidth(&per_bus, x).unwrap();
        prop_assert!(bw >= -1e-12);
        prop_assert!(bw <= per_bus.len() as f64 + 1e-9);
        let total_mem: usize = per_bus.iter().sum();
        prop_assert!(bw <= total_mem as f64 * x + 1e-9);
    }

    /// Equation (9): more groups never helps (g-splitting only constrains
    /// the arbiter), and g = 1 equals eq (4).
    #[test]
    fn eq9_group_splitting_penalty(half_m in 1usize..16, half_b in 1usize..16, x in 0.0f64..=1.0) {
        let m = 2 * half_m;
        let b = (2 * half_b).min(m);
        prop_assume!(b % 2 == 0);
        let grouped = eq9_partial_bandwidth(m, b, 2, x).unwrap();
        let full = eq9_partial_bandwidth(m, b, 1, x).unwrap();
        prop_assert!(grouped <= full + 1e-9);
        prop_assert!((full - eq4_full_bandwidth(m, b, x).unwrap()).abs() < 1e-12);
    }

    /// Equation (12): bounded by B, monotone in X, and K = 1 equals eq (4).
    #[test]
    fn eq12_bounds(sizes in proptest::collection::vec(1usize..6, 1..6), x in 0.0f64..=1.0) {
        let k = sizes.len();
        let m: usize = sizes.iter().sum();
        let b = (k + 2).min(m.max(k));
        prop_assume!(b >= k);
        let bw = eq12_kclass_bandwidth(&sizes, b, x).unwrap();
        prop_assert!(bw >= -1e-12);
        prop_assert!(bw <= b as f64 + 1e-9);
        prop_assert!(bw <= m as f64 * x + 1e-9);
        let x2 = (x + 0.01).min(1.0);
        prop_assert!(eq12_kclass_bandwidth(&sizes, b, x2).unwrap() >= bw - 1e-12);
        // One class on all buses = full connection.
        let single_class = eq12_kclass_bandwidth(&[m], b.min(m), x).unwrap();
        prop_assert!((single_class - eq4_full_bandwidth(m, b.min(m), x).unwrap()).abs() < 1e-9);
    }

    /// The generic pmf form of eq (12) is bounded by B for *any* pmfs.
    #[test]
    fn eq12_pmf_form_bounded(pmf_sizes in proptest::collection::vec(1usize..5, 1..5),
                             b_extra in 0usize..4,
                             seeds in proptest::collection::vec(0.0f64..=1.0, 16)) {
        let k = pmf_sizes.len();
        let b = k + b_extra;
        // Synthesize arbitrary normalized pmfs from the seed pool.
        let mut cursor = 0usize;
        let pmfs: Vec<Vec<f64>> = pmf_sizes
            .iter()
            .map(|&len| {
                let mut raw: Vec<f64> = (0..=len)
                    .map(|_| {
                        let v = seeds[cursor % seeds.len()] + 0.01;
                        cursor += 1;
                        v
                    })
                    .collect();
                let total: f64 = raw.iter().sum();
                raw.iter_mut().for_each(|v| *v /= total);
                raw
            })
            .collect();
        let bw = kclass_bandwidth_from_pmfs(&pmfs, b);
        prop_assert!(bw >= -1e-9);
        prop_assert!(bw <= b as f64 + 1e-9);
    }

    /// Equation (2) agrees with the uniform closed form when the fractions
    /// are uniform, and is monotone in r.
    #[test]
    fn eq2_consistency(k1 in 2usize..5, k2 in 2usize..5, r in 0.0f64..0.99) {
        let h = Hierarchy::paired(&[k1, k2]).unwrap();
        let n = k1 * k2;
        let f = Fractions::uniform(&h);
        let x = eq2_request_probability(&h, &f, r).unwrap();
        let direct = uniform_request_probability(n, n, r).unwrap();
        prop_assert!((x - direct).abs() < 1e-12);
        let x2 = eq2_request_probability(&h, &f, r + 0.01).unwrap();
        prop_assert!(x2 >= x - 1e-12);
        // Crossbar bound is linear in X.
        prop_assert!((crossbar_bandwidth(n, x).unwrap() - n as f64 * x).abs() < 1e-12);
    }

    /// Locality helps: shifting aggregate share from the remote level to
    /// the favorite level never decreases X's complement... i.e. lowers
    /// contention: the crossbar bandwidth (N·X) weakly *increases* with the
    /// favorite share under full load.
    #[test]
    fn favorite_share_lowers_contention(shift in 0.0f64..0.3) {
        let h = Hierarchy::two_level(16, 4).unwrap();
        let base = Fractions::from_aggregate_shares(&h, &[0.4, 0.3, 0.3]).unwrap();
        let shifted =
            Fractions::from_aggregate_shares(&h, &[0.4 + shift, 0.3, 0.3 - shift]).unwrap();
        let x_base = eq2_request_probability(&h, &base, 1.0).unwrap();
        let x_shifted = eq2_request_probability(&h, &shifted, 1.0).unwrap();
        prop_assert!(x_shifted >= x_base - 1e-12,
                     "more favorite share concentrates mass: {x_shifted} vs {x_base}");
    }
}
