//! Multiple-bus interconnection network topologies.
//!
//! This crate models the `N × M × B` multiprocessor interconnection networks
//! studied by Chen & Sheu (*Performance Analysis of Multiple Bus
//! Interconnection Networks with Hierarchical Requesting Model*, ICDCS 1988):
//! `N` processors and `M` shared memory modules joined by `B` time-shared
//! buses, `B ≤ min(M, N)`. Every processor is connected to every bus; the
//! schemes differ in how *memories* attach to buses:
//!
//! * [`ConnectionScheme::Full`] — every memory on every bus (the classic
//!   multiple-bus network, paper Fig. 1);
//! * [`ConnectionScheme::Single`] — each memory on exactly one bus
//!   (paper Fig. 4);
//! * [`ConnectionScheme::PartialGroups`] — Lang et al.'s partial bus network:
//!   memories and buses split into `g` groups, each memory group on its own
//!   `B/g` buses (paper Fig. 2);
//! * [`ConnectionScheme::KClasses`] — the paper's proposed *partial bus
//!   network with K classes*: memories in class `C_j` attach to buses
//!   `1 … j+B−K` (paper Fig. 3);
//! * [`ConnectionScheme::Crossbar`] — the `N × M` crossbar baseline (no bus
//!   contention at all).
//!
//! On top of the connectivity model the crate provides the paper's **cost
//! analysis** (Table I: connection counts, per-bus loads, degree of fault
//! tolerance — module [`cost`]), **fault masks and degraded views** (module
//! [`fault`]), and **renderers** that regenerate the paper's Figures 1–4 as
//! ASCII or Graphviz DOT (module [`render`]).
//!
//! Bus, memory, processor, class, and group indices are all **0-based** in
//! this crate; the paper is 1-based. The mapping is `paper bus i` ↔
//! `index i − 1`, and `paper class C_j` ↔ `class index j − 1`.
//!
//! # Examples
//!
//! ```
//! use mbus_topology::{BusNetwork, ConnectionScheme};
//!
//! // The paper's running example: a 3 × 6 × 4 partial bus network with
//! // three classes of two memories each (Fig. 3).
//! let net = BusNetwork::new(3, 6, 4, ConnectionScheme::uniform_classes(6, 3)?)?;
//! assert_eq!(net.buses_of_memory(0).count(), 2); // class C_1: buses 1..2
//! assert_eq!(net.buses_of_memory(5).count(), 4); // class C_3: buses 1..4
//! assert_eq!(net.cost().connections, 3 * 4 + 2 * (2 + 3 + 4));
//! assert_eq!(net.fault_tolerance_degree(), 1); // B − K
//! # Ok::<(), mbus_topology::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
mod error;
pub mod fault;
mod network;
pub mod render;
mod scheme;
pub mod served;

pub use cost::{CostSummary, SchemeCostRow};
pub use error::TopologyError;
pub use fault::{DegradedView, FaultMask};
pub use network::BusNetwork;
pub use scheme::{ConnectionScheme, SchemeKind};
pub use served::{served_count, ServedTable, MAX_TABLE_MEMORIES};
