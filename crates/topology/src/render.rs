//! Renderers regenerating the paper's Figures 1–4.
//!
//! The paper's four figures are wiring diagrams of the connection schemes.
//! [`ascii_diagram`] draws the same diagrams as fixed-width text (processors
//! across the top, horizontal bus lines, memories across the bottom, `●` at
//! each connection), and [`dot_graph`] emits a Graphviz bipartite graph for
//! higher-fidelity rendering.

use crate::BusNetwork;

/// Renders the network as a fixed-width ASCII wiring diagram in the style of
/// the paper's Figures 1–4.
///
/// # Examples
///
/// ```
/// use mbus_topology::{render, BusNetwork, ConnectionScheme};
///
/// let net = BusNetwork::new(3, 6, 4, ConnectionScheme::uniform_classes(6, 3)?)?;
/// let art = render::ascii_diagram(&net);
/// assert!(art.contains("P1"));
/// assert!(art.contains("bus 4"));
/// # Ok::<(), mbus_topology::TopologyError>(())
/// ```
pub fn ascii_diagram(net: &BusNetwork) -> String {
    let n = net.processors();
    let m = net.memories();
    let b = net.buses();
    // One column of width CELL per device; processors and memories share the
    // horizontal scale so the diagram reads like the paper's figures.
    const CELL: usize = 6;
    let devices = n.max(m);
    let width = devices * CELL;
    let mut out = String::new();

    out.push_str(&format!("{net}\n"));

    // Processor row (labels are 1-based like the paper).
    let mut proc_row = String::new();
    for p in 0..n {
        proc_row.push_str(&format!("{:^CELL$}", format!("P{}", p + 1)));
    }
    out.push_str(proc_row.trim_end());
    out.push('\n');

    // Vertical taps from every processor down to the first bus.
    let mut taps = vec![b' '; width];
    for p in 0..n {
        taps[p * CELL + CELL / 2] = b'|';
    }
    // lint:allow(no_panic, the buffer is built from ASCII bytes only, so from_utf8 cannot fail)
    out.push_str(String::from_utf8(taps).expect("ascii").trim_end());
    out.push('\n');

    // One horizontal line per bus. Processors tap every bus ('+'), memories
    // tap only their connected buses ('*').
    for bus in 0..b {
        let mut line = vec![b'-'; width];
        for p in 0..n {
            line[p * CELL + CELL / 2] = b'+';
        }
        for mem in 0..m {
            if net.connects(bus, mem) {
                line[mem * CELL + CELL / 2] = b'*';
            }
        }
        // lint:allow(no_panic, the buffer is built from ASCII bytes only, so from_utf8 cannot fail)
        let mut text = String::from_utf8(line).expect("ascii");
        text.push_str(&format!("  bus {}", bus + 1));
        out.push_str(&text);
        out.push('\n');
    }

    // Vertical drops from the lowest connected bus to each memory.
    let mut drops = vec![b' '; width];
    for mem in 0..m {
        drops[mem * CELL + CELL / 2] = b'|';
    }
    // lint:allow(no_panic, the buffer is built from ASCII bytes only, so from_utf8 cannot fail)
    out.push_str(String::from_utf8(drops).expect("ascii").trim_end());
    out.push('\n');

    // Memory row.
    let mut mem_row = String::new();
    for j in 0..m {
        mem_row.push_str(&format!("{:^CELL$}", format!("MM{}", j + 1)));
    }
    out.push_str(mem_row.trim_end());
    out.push('\n');
    out
}

/// Emits the network as a Graphviz DOT bipartite graph: processors, buses,
/// and memories as ranked node rows, with an edge per connection.
///
/// # Examples
///
/// ```
/// use mbus_topology::{render, BusNetwork, ConnectionScheme};
///
/// let net = BusNetwork::new(2, 2, 2, ConnectionScheme::Full)?;
/// let dot = render::dot_graph(&net);
/// assert!(dot.starts_with("graph multibus"));
/// assert!(dot.contains("b1 -- m1")); // node ids are 0-based
/// # Ok::<(), mbus_topology::TopologyError>(())
/// ```
pub fn dot_graph(net: &BusNetwork) -> String {
    let mut out = String::from("graph multibus {\n");
    out.push_str("  rankdir=TB;\n");
    out.push_str(&format!("  label=\"{net}\";\n  node [shape=box];\n"));
    out.push_str("  { rank=source;");
    for p in 0..net.processors() {
        out.push_str(&format!(" p{p} [label=\"P{}\"];", p + 1));
    }
    out.push_str(" }\n");
    out.push_str("  { rank=same; node [shape=plaintext];");
    for bus in 0..net.buses() {
        out.push_str(&format!(" b{bus} [label=\"bus {}\"];", bus + 1));
    }
    out.push_str(" }\n");
    out.push_str("  { rank=sink;");
    for mem in 0..net.memories() {
        out.push_str(&format!(" m{mem} [label=\"MM{}\"];", mem + 1));
    }
    out.push_str(" }\n");
    for p in 0..net.processors() {
        for bus in 0..net.buses() {
            out.push_str(&format!("  p{p} -- b{bus};\n"));
        }
    }
    for bus in 0..net.buses() {
        for mem in net.memories_of_bus(bus) {
            out.push_str(&format!("  b{bus} -- m{mem};\n"));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConnectionScheme;

    fn lines_of(art: &str) -> Vec<&str> {
        art.lines().collect()
    }

    #[test]
    fn figure1_full_connection_marks_everything() {
        // Fig. 1 shape: full connection.
        let net = BusNetwork::new(4, 4, 2, ConnectionScheme::Full).unwrap();
        let art = ascii_diagram(&net);
        let lines = lines_of(&art);
        // Header + processors + taps + 2 bus lines + drops + memories.
        assert_eq!(lines.len(), 7);
        for bus_line in &lines[3..5] {
            // Shared columns: '+' overwritten by '*' where a memory also
            // taps; with N = M every tap column shows '*'.
            assert_eq!(bus_line.matches('*').count(), 4);
            assert!(bus_line.contains("bus"));
        }
    }

    #[test]
    fn figure4_single_connection_marks_one_bus_per_memory() {
        let net =
            BusNetwork::new(4, 4, 2, ConnectionScheme::balanced_single(4, 2).unwrap()).unwrap();
        let art = ascii_diagram(&net);
        let lines = lines_of(&art);
        // Each bus line carries exactly its own two memories.
        assert_eq!(lines[3].matches('*').count(), 2);
        assert_eq!(lines[4].matches('*').count(), 2);
    }

    #[test]
    fn figure3_kclass_memory_marks_grow_with_class() {
        let net =
            BusNetwork::new(3, 6, 4, ConnectionScheme::uniform_classes(6, 3).unwrap()).unwrap();
        let art = ascii_diagram(&net);
        let lines = lines_of(&art);
        // Bus 1 (index 0) connects all six memories; bus 4 only class C_3's
        // two.
        assert_eq!(lines[3].matches('*').count(), 6);
        assert_eq!(lines[6].matches('*').count(), 2);
    }

    #[test]
    fn dot_graph_edge_counts() {
        let net =
            BusNetwork::new(3, 6, 4, ConnectionScheme::uniform_classes(6, 3).unwrap()).unwrap();
        let dot = dot_graph(&net);
        let processor_edges = dot.matches(" -- b").count();
        // Every processor to every bus…
        assert_eq!(processor_edges, 3 * 4);
        // …and one edge per bus-memory connection: 2+3+4 per class pair.
        let memory_edges = dot.matches(" -- m").count();
        assert_eq!(memory_edges, 2 * (2 + 3 + 4));
        assert!(dot.ends_with("}\n"));
    }
}
