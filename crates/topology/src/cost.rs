//! Cost and fault-tolerance analysis (the paper's §II-B and Table I).
//!
//! The paper measures network cost by (a) the total number of bus
//! connections, and (b) the capacitive load of each bus, proportional to the
//! number of devices attached to it. Both are reproduced here, together with
//! the degree of fault tolerance, for each connection scheme.

use crate::{BusNetwork, ConnectionScheme, SchemeKind};
use serde::{Deserialize, Serialize};

/// Instantiated cost figures for one concrete network — a numeric row of the
/// paper's Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostSummary {
    /// Which scheme the summary describes.
    pub kind: SchemeKind,
    /// Total number of connections to buses (processor-side plus
    /// memory-side); `N · M` crosspoints for the crossbar.
    pub connections: usize,
    /// Load of each bus, proportional to the number of devices attached
    /// (processors + memories). Empty for the crossbar, which has no shared
    /// buses.
    pub bus_loads: Vec<usize>,
    /// The paper's degree of fault tolerance: guaranteed number of bus
    /// failures survivable with all memories still reachable.
    pub fault_tolerance_degree: usize,
}

impl CostSummary {
    /// Computes the cost summary for a network.
    pub fn for_network(net: &BusNetwork) -> Self {
        let (n, m, b) = (net.processors(), net.memories(), net.buses());
        let (connections, bus_loads) = match net.scheme() {
            // B(N + M); each bus carries all N processors and M memories.
            ConnectionScheme::Full => (b * (n + m), vec![n + m; b]),
            // BN + M; bus i carries N processors and its own M_i memories.
            ConnectionScheme::Single { .. } => {
                let loads: Vec<usize> = (0..b)
                    .map(|bus| n + net.memories_of_bus(bus).count())
                    .collect();
                (b * n + m, loads)
            }
            // B(N + M/g); each bus carries N processors and its group's M/g
            // memories.
            ConnectionScheme::PartialGroups { groups } => {
                (b * (n + m / groups), vec![n + m / groups; b])
            }
            // BN + Σ_j M_j (j + B − K); bus i carries N processors plus the
            // memories of classes C_K … C_max(i+K−B, 1).
            ConnectionScheme::KClasses { class_sizes } => {
                let k = class_sizes.len();
                let memory_side: usize = class_sizes
                    .iter()
                    .enumerate()
                    .map(|(c, &size)| size * (c + 1 + b - k))
                    .sum();
                let loads: Vec<usize> = (0..b)
                    .map(|bus| n + net.memories_of_bus(bus).count())
                    .collect();
                (b * n + memory_side, loads)
            }
            // N · M crosspoints; there are no shared buses to load.
            ConnectionScheme::Crossbar => (n * m, Vec::new()),
        };
        Self {
            kind: net.kind(),
            connections,
            bus_loads,
            fault_tolerance_degree: net.fault_tolerance_degree(),
        }
    }

    /// Maximum per-bus load, or 0 for the crossbar.
    pub fn max_bus_load(&self) -> usize {
        self.bus_loads.iter().copied().max().unwrap_or(0)
    }

    /// Performance-per-connection ratio for a given bandwidth — the paper's
    /// §IV "performance-cost ratio" comparisons.
    ///
    /// # Panics
    ///
    /// Panics if the summary reports zero connections (impossible for a
    /// validated network).
    pub fn performance_cost_ratio(&self, bandwidth: f64) -> f64 {
        assert!(self.connections > 0, "network must have connections");
        bandwidth / self.connections as f64
    }
}

/// A symbolic row of the paper's Table I, with both the formula strings from
/// the paper and their instantiated values for a concrete network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeCostRow {
    /// Human-readable scheme name (Table I's "connection schemes" column).
    pub scheme: String,
    /// The paper's symbolic connection-count formula.
    pub connections_formula: String,
    /// The paper's symbolic per-bus load formula.
    pub load_formula: String,
    /// The paper's symbolic degree-of-fault-tolerance formula.
    pub fault_tolerance_formula: String,
    /// Instantiated connection count.
    pub connections: usize,
    /// Instantiated worst-case bus load.
    pub max_bus_load: usize,
    /// Instantiated degree of fault tolerance.
    pub fault_tolerance: usize,
}

impl SchemeCostRow {
    /// Builds the Table I row for a concrete network, pairing the paper's
    /// symbolic formulas with the instantiated numbers.
    pub fn for_network(net: &BusNetwork) -> Self {
        let summary = net.cost();
        let (connections_formula, load_formula, fault_tolerance_formula) = match net.scheme() {
            ConnectionScheme::Full => ("B(N+M)", "N + M", "B - 1"),
            ConnectionScheme::Single { .. } => ("BN + M", "N + M_i", "0"),
            ConnectionScheme::PartialGroups { .. } => ("B(N + M/g)", "N + M/g", "B/g - 1"),
            ConnectionScheme::KClasses { .. } => (
                "BN + sum_j M_j (j + B - K)",
                "N + sum_{j >= max(i+K-B, 1)} M_j",
                "B - K",
            ),
            ConnectionScheme::Crossbar => ("N * M", "-", "0"),
        };
        Self {
            scheme: net.kind().to_string(),
            connections_formula: connections_formula.to_owned(),
            load_formula: load_formula.to_owned(),
            fault_tolerance_formula: fault_tolerance_formula.to_owned(),
            connections: summary.connections,
            max_bus_load: summary.max_bus_load(),
            fault_tolerance: summary.fault_tolerance_degree,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BusNetwork;

    #[test]
    fn full_connection_cost() {
        let net = BusNetwork::new(8, 8, 4, ConnectionScheme::Full).unwrap();
        let cost = net.cost();
        assert_eq!(cost.connections, 4 * (8 + 8));
        assert_eq!(cost.bus_loads, vec![16; 4]);
        assert_eq!(cost.fault_tolerance_degree, 3);
    }

    #[test]
    fn single_connection_cost() {
        let net =
            BusNetwork::new(8, 8, 4, ConnectionScheme::balanced_single(8, 4).unwrap()).unwrap();
        let cost = net.cost();
        assert_eq!(cost.connections, 4 * 8 + 8);
        assert_eq!(cost.bus_loads, vec![8 + 2; 4]);
        assert_eq!(cost.fault_tolerance_degree, 0);
    }

    #[test]
    fn partial_groups_cost() {
        let net = BusNetwork::new(8, 8, 4, ConnectionScheme::PartialGroups { groups: 2 }).unwrap();
        let cost = net.cost();
        assert_eq!(cost.connections, 4 * (8 + 4));
        assert_eq!(cost.bus_loads, vec![12; 4]);
        assert_eq!(cost.fault_tolerance_degree, 1);
    }

    #[test]
    fn kclass_cost_matches_paper_formula() {
        // Fig. 3: 3 × 6 × 4 with classes of size 2 each (K = 3).
        // Connections = BN + Σ M_j (j + B − K) = 12 + 2·(2 + 3 + 4) = 30.
        let net =
            BusNetwork::new(3, 6, 4, ConnectionScheme::uniform_classes(6, 3).unwrap()).unwrap();
        let cost = net.cost();
        assert_eq!(cost.connections, 30);
        // Bus loads: bus 0 sees all 6 memories, bus 1 all 6, bus 2 classes
        // C_2, C_3 (4 memories), bus 3 class C_3 (2 memories); plus N = 3.
        assert_eq!(cost.bus_loads, vec![9, 9, 7, 5]);
        assert_eq!(cost.fault_tolerance_degree, 1);
    }

    #[test]
    fn kclass_with_k_equals_b_connection_count() {
        // Paper §IV: with K = B and N/K memories per class the connection
        // count is NB + (B+1)N/2.
        for (n, b) in [(8usize, 4usize), (16, 8), (32, 8)] {
            let net =
                BusNetwork::new(n, n, b, ConnectionScheme::uniform_classes(n, b).unwrap()).unwrap();
            assert_eq!(net.cost().connections, n * b + (b + 1) * n / 2);
        }
    }

    #[test]
    fn crossbar_cost_is_crosspoints() {
        let net = BusNetwork::new(8, 6, 1, ConnectionScheme::Crossbar).unwrap();
        let cost = net.cost();
        assert_eq!(cost.connections, 48);
        assert!(cost.bus_loads.is_empty());
        assert_eq!(cost.max_bus_load(), 0);
    }

    #[test]
    fn performance_cost_ratio_ordering_matches_paper() {
        // §IV: single connection is the most cost-effective, full the least,
        // at equal bandwidth-per-connection ratios computed from cost alone.
        let n = 16;
        let b = 8;
        let full = BusNetwork::new(n, n, b, ConnectionScheme::Full).unwrap();
        let single =
            BusNetwork::new(n, n, b, ConnectionScheme::balanced_single(n, b).unwrap()).unwrap();
        // For identical bandwidth, fewer connections → better ratio.
        let bw = 7.0;
        assert!(single.cost().performance_cost_ratio(bw) > full.cost().performance_cost_ratio(bw));
    }

    #[test]
    fn table_one_rows_have_formulas() {
        let net = BusNetwork::new(8, 8, 4, ConnectionScheme::Full).unwrap();
        let row = SchemeCostRow::for_network(&net);
        assert_eq!(row.connections_formula, "B(N+M)");
        assert_eq!(row.connections, 64);
        assert_eq!(row.fault_tolerance, 3);
    }
}
