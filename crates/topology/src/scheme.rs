//! Bus–memory connection schemes.

use crate::TopologyError;
use serde::{Deserialize, Serialize};

/// How memory modules attach to buses in an `N × M × B` network.
///
/// Processors are always connected to all buses (all four multiple-bus
/// schemes in the paper share this); the scheme only governs the
/// memory side. [`ConnectionScheme::Crossbar`] is the contention-free
/// baseline the paper compares against (its "N × N crossbar" rows).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ConnectionScheme {
    /// Full bus–memory connection: every memory on every bus (paper Fig. 1).
    Full,
    /// Single bus–memory connection (paper Fig. 4): `assignment[j]` is the
    /// one bus memory `j` attaches to.
    Single {
        /// Bus index for each memory module (length `M`).
        assignment: Vec<usize>,
    },
    /// Lang et al.'s partial bus network (paper Fig. 2): memories and buses
    /// split into `g` equal groups; memory group `q` attaches to bus group
    /// `q` (buses `q·B/g … (q+1)·B/g − 1`, memories `q·M/g … (q+1)·M/g − 1`).
    PartialGroups {
        /// Number of groups `g` (must divide `M` and `B`).
        groups: usize,
    },
    /// The paper's proposed partial bus network with `K` classes (§II-A,
    /// Fig. 3): memories of class `C_j` (1-based `j`) attach to buses
    /// `1 … j + B − K` (1-based). `class_sizes[c]` is the number of memories
    /// in class `C_{c+1}`; memories are numbered class by class, lowest
    /// class first.
    KClasses {
        /// Memories per class, lowest class (`C_1`) first; must sum to `M`.
        class_sizes: Vec<usize>,
    },
    /// An `N × M` crossbar: every processor reaches every memory through a
    /// dedicated crosspoint; there is no bus contention. Used as the
    /// upper-bound baseline.
    Crossbar,
}

/// Discriminant-only view of a [`ConnectionScheme`], handy for dispatch
/// tables and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Full bus–memory connection.
    Full,
    /// Single bus–memory connection.
    Single,
    /// Partial bus network with `g` groups.
    PartialGroups,
    /// Partial bus network with `K` classes.
    KClasses,
    /// Crossbar baseline.
    Crossbar,
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Self::Full => "full bus-memory connection",
            Self::Single => "single bus-memory connection",
            Self::PartialGroups => "partial bus network",
            Self::KClasses => "partial bus network with K classes",
            Self::Crossbar => "crossbar",
        };
        f.write_str(name)
    }
}

impl ConnectionScheme {
    /// A single-connection scheme distributing `m` memories over `b` buses as
    /// evenly as possible, matching the paper's Table IV setting where "each
    /// bus is connected by N/B memory modules".
    ///
    /// Memories are dealt out in contiguous runs: bus `i` gets memories
    /// `⌈m·i/b⌉ … ⌈m·(i+1)/b⌉ − 1`. When `b` divides `m`, each bus gets
    /// exactly `m/b` memories.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::ZeroDimension`] if `m == 0` or `b == 0`, and
    /// [`TopologyError::TooManyBuses`] if `b > m` (some bus would be empty).
    pub fn balanced_single(m: usize, b: usize) -> Result<Self, TopologyError> {
        if m == 0 {
            return Err(TopologyError::ZeroDimension {
                dimension: "memories",
            });
        }
        if b == 0 {
            return Err(TopologyError::ZeroDimension { dimension: "buses" });
        }
        if b > m {
            return Err(TopologyError::TooManyBuses { buses: b, limit: m });
        }
        let mut assignment = Vec::with_capacity(m);
        for bus in 0..b {
            let start = (m * bus).div_ceil(b);
            let end = (m * (bus + 1)).div_ceil(b);
            assignment.extend(std::iter::repeat_n(bus, end - start));
        }
        debug_assert_eq!(assignment.len(), m);
        Ok(Self::Single { assignment })
    }

    /// A single-connection scheme assigning memory `j` to bus `j mod b` —
    /// the *strided* placement, which scatters neighbouring memories over
    /// different buses.
    ///
    /// Under clustered (hierarchical) traffic this placement decorrelates
    /// the requests arriving at one bus, whereas
    /// [`ConnectionScheme::balanced_single`]'s contiguous runs align whole
    /// clusters with single buses. The placement-sensitivity experiments in
    /// `EXPERIMENTS.md` compare the two.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConnectionScheme::balanced_single`].
    pub fn strided_single(m: usize, b: usize) -> Result<Self, TopologyError> {
        if m == 0 {
            return Err(TopologyError::ZeroDimension {
                dimension: "memories",
            });
        }
        if b == 0 {
            return Err(TopologyError::ZeroDimension { dimension: "buses" });
        }
        if b > m {
            return Err(TopologyError::TooManyBuses { buses: b, limit: m });
        }
        Ok(Self::Single {
            assignment: (0..m).map(|j| j % b).collect(),
        })
    }

    /// A K-class scheme with `m` memories split as evenly as possible into
    /// `k` classes, matching the paper's Table VI setting (`K = B`, each
    /// class `N/K` memories).
    ///
    /// When `k` does not divide `m`, earlier (lower) classes get the extra
    /// memories.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::ZeroDimension`] for zero inputs and
    /// [`TopologyError::BadClassSizes`] if `k > m` (a class would be empty).
    pub fn uniform_classes(m: usize, k: usize) -> Result<Self, TopologyError> {
        if m == 0 {
            return Err(TopologyError::ZeroDimension {
                dimension: "memories",
            });
        }
        if k == 0 {
            return Err(TopologyError::ZeroDimension { dimension: "buses" });
        }
        if k > m {
            return Err(TopologyError::BadClassSizes {
                total: k,
                memories: m,
            });
        }
        let base = m / k;
        let extra = m % k;
        let class_sizes = (0..k).map(|c| base + usize::from(c < extra)).collect();
        Ok(Self::KClasses { class_sizes })
    }

    /// The discriminant-only kind of this scheme.
    pub fn kind(&self) -> SchemeKind {
        match self {
            Self::Full => SchemeKind::Full,
            Self::Single { .. } => SchemeKind::Single,
            Self::PartialGroups { .. } => SchemeKind::PartialGroups,
            Self::KClasses { .. } => SchemeKind::KClasses,
            Self::Crossbar => SchemeKind::Crossbar,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_single_divisible() {
        let ConnectionScheme::Single { assignment } =
            ConnectionScheme::balanced_single(8, 4).unwrap()
        else {
            panic!("expected single scheme");
        };
        assert_eq!(assignment, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn balanced_single_uneven() {
        let ConnectionScheme::Single { assignment } =
            ConnectionScheme::balanced_single(7, 3).unwrap()
        else {
            panic!("expected single scheme");
        };
        assert_eq!(assignment.len(), 7);
        // No bus may be empty, and loads differ by at most one.
        let mut loads = [0usize; 3];
        for &b in &assignment {
            loads[b] += 1;
        }
        assert!(loads.iter().all(|&l| l > 0));
        assert!(loads.iter().max().unwrap() - loads.iter().min().unwrap() <= 1);
    }

    #[test]
    fn balanced_single_rejects_more_buses_than_memories() {
        assert_eq!(
            ConnectionScheme::balanced_single(2, 3).unwrap_err(),
            TopologyError::TooManyBuses { buses: 3, limit: 2 }
        );
    }

    #[test]
    fn strided_single_interleaves() {
        let ConnectionScheme::Single { assignment } =
            ConnectionScheme::strided_single(8, 4).unwrap()
        else {
            panic!("expected single scheme");
        };
        assert_eq!(assignment, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Validation mirrors balanced_single.
        assert!(ConnectionScheme::strided_single(2, 3).is_err());
        assert!(ConnectionScheme::strided_single(0, 1).is_err());
    }

    #[test]
    fn uniform_classes_divisible() {
        let ConnectionScheme::KClasses { class_sizes } =
            ConnectionScheme::uniform_classes(8, 4).unwrap()
        else {
            panic!("expected k-class scheme");
        };
        assert_eq!(class_sizes, vec![2, 2, 2, 2]);
    }

    #[test]
    fn uniform_classes_uneven_front_loads() {
        let ConnectionScheme::KClasses { class_sizes } =
            ConnectionScheme::uniform_classes(7, 3).unwrap()
        else {
            panic!("expected k-class scheme");
        };
        assert_eq!(class_sizes, vec![3, 2, 2]);
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(
            ConnectionScheme::Full.kind().to_string(),
            "full bus-memory connection"
        );
        assert_eq!(ConnectionScheme::Crossbar.kind(), SchemeKind::Crossbar);
    }
}
