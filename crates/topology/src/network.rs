//! The `N × M × B` network type.

use crate::{ConnectionScheme, CostSummary, SchemeKind, TopologyError};
use serde::{Deserialize, Serialize};

/// An `N × M × B` multiprocessor interconnection network: `N` processors,
/// `M` shared memory modules, and `B` buses wired according to a
/// [`ConnectionScheme`].
///
/// The type is immutable after construction and all invariants are validated
/// by [`BusNetwork::new`], so downstream code (analysis, simulation) can rely
/// on e.g. "every class is non-empty" without re-checking.
///
/// # Examples
///
/// ```
/// use mbus_topology::{BusNetwork, ConnectionScheme};
///
/// let net = BusNetwork::new(8, 8, 4, ConnectionScheme::Full)?;
/// assert_eq!(net.processors(), 8);
/// assert!(net.connects(3, 7)); // full connection: every bus, every memory
/// # Ok::<(), mbus_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusNetwork {
    n: usize,
    m: usize,
    b: usize,
    scheme: ConnectionScheme,
    /// For `KClasses`: memory index at which each class starts, plus a final
    /// sentinel equal to `m`. Empty for other schemes.
    class_offsets: Vec<usize>,
}

impl BusNetwork {
    /// Builds and validates a network of `n` processors, `m` memories, and
    /// `b` buses.
    ///
    /// # Errors
    ///
    /// * any dimension of zero → [`TopologyError::ZeroDimension`];
    /// * `b > min(m, n)` for a bus-based scheme → [`TopologyError::TooManyBuses`]
    ///   (the crossbar baseline ignores `b` for capacity but still validates it);
    /// * scheme-specific inconsistencies → see [`TopologyError`].
    pub fn new(
        n: usize,
        m: usize,
        b: usize,
        scheme: ConnectionScheme,
    ) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::ZeroDimension {
                dimension: "processors",
            });
        }
        if m == 0 {
            return Err(TopologyError::ZeroDimension {
                dimension: "memories",
            });
        }
        if b == 0 {
            return Err(TopologyError::ZeroDimension { dimension: "buses" });
        }
        // The paper states B ≤ min(M, N), yet its own Fig. 3 example is a
        // 3 × 6 × 4 network (B > N). We therefore enforce only B ≤ M — more
        // buses than memories can never be used, but more buses than
        // processors is merely wasteful in a given cycle, not ill-formed.
        if scheme.kind() != SchemeKind::Crossbar && b > m {
            return Err(TopologyError::TooManyBuses { buses: b, limit: m });
        }

        let mut class_offsets = Vec::new();
        match &scheme {
            ConnectionScheme::Full | ConnectionScheme::Crossbar => {}
            ConnectionScheme::Single { assignment } => {
                if assignment.len() != m {
                    return Err(TopologyError::BadSingleAssignment {
                        assigned: assignment.len(),
                        memories: m,
                    });
                }
                let mut seen = vec![false; b];
                for (memory, &bus) in assignment.iter().enumerate() {
                    if bus >= b {
                        return Err(TopologyError::SingleAssignmentBusOutOfRange {
                            memory,
                            bus,
                            buses: b,
                        });
                    }
                    seen[bus] = true;
                }
                if let Some(bus) = seen.iter().position(|&s| !s) {
                    return Err(TopologyError::EmptyBus { bus });
                }
            }
            ConnectionScheme::PartialGroups { groups } => {
                let g = *groups;
                if g == 0 || g > b {
                    return Err(TopologyError::InvalidGroupCount {
                        groups: g,
                        buses: b,
                    });
                }
                if m % g != 0 || b % g != 0 {
                    return Err(TopologyError::GroupsDontDivide {
                        groups: g,
                        memories: m,
                        buses: b,
                    });
                }
            }
            ConnectionScheme::KClasses { class_sizes } => {
                let k = class_sizes.len();
                if k == 0 || k > b {
                    return Err(TopologyError::InvalidClassCount {
                        classes: k,
                        buses: b,
                    });
                }
                let total: usize = class_sizes.iter().sum();
                if total != m || class_sizes.contains(&0) {
                    return Err(TopologyError::BadClassSizes { total, memories: m });
                }
                class_offsets.reserve(k + 1);
                let mut acc = 0;
                for &size in class_sizes {
                    class_offsets.push(acc);
                    acc += size;
                }
                class_offsets.push(acc);
            }
        }

        Ok(Self {
            n,
            m,
            b,
            scheme,
            class_offsets,
        })
    }

    /// Number of processors `N`.
    pub fn processors(&self) -> usize {
        self.n
    }

    /// Number of memory modules `M`.
    pub fn memories(&self) -> usize {
        self.m
    }

    /// Number of buses `B`.
    pub fn buses(&self) -> usize {
        self.b
    }

    /// The connection scheme.
    pub fn scheme(&self) -> &ConnectionScheme {
        &self.scheme
    }

    /// Discriminant-only scheme kind.
    pub fn kind(&self) -> SchemeKind {
        self.scheme.kind()
    }

    /// How many requests the interconnect can serve per cycle: `B` for bus
    /// schemes, `min(N, M)` for the crossbar.
    pub fn capacity(&self) -> usize {
        match self.kind() {
            SchemeKind::Crossbar => self.n.min(self.m),
            _ => self.b,
        }
    }

    /// Whether bus `bus` is wired to memory `memory`.
    ///
    /// For the crossbar this is `true` for every pair (a crossbar behaves
    /// like a network where connectivity never constrains anything).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn connects(&self, bus: usize, memory: usize) -> bool {
        assert!(bus < self.b, "bus index {bus} out of range ({})", self.b);
        assert!(
            memory < self.m,
            "memory index {memory} out of range ({})",
            self.m
        );
        match &self.scheme {
            ConnectionScheme::Full | ConnectionScheme::Crossbar => true,
            ConnectionScheme::Single { assignment } => assignment[memory] == bus,
            ConnectionScheme::PartialGroups { groups } => {
                let g = *groups;
                memory / (self.m / g) == bus / (self.b / g)
            }
            ConnectionScheme::KClasses { .. } => {
                // lint:allow(no_panic, every memory belongs to a class; BusNetwork::new validated the K-class layout)
                let c = self.class_of_memory(memory).expect("validated k-class");
                bus < self.kclass_bus_count(c)
            }
        }
    }

    /// Iterator over the bus indices wired to `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `memory` is out of range.
    pub fn buses_of_memory(&self, memory: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(
            memory < self.m,
            "memory index {memory} out of range ({})",
            self.m
        );

        match &self.scheme {
            ConnectionScheme::Full | ConnectionScheme::Crossbar => 0..self.b,
            ConnectionScheme::Single { assignment } => assignment[memory]..assignment[memory] + 1,
            ConnectionScheme::PartialGroups { groups } => {
                let per = self.b / groups;
                let q = memory / (self.m / groups);
                q * per..(q + 1) * per
            }
            ConnectionScheme::KClasses { .. } => {
                // lint:allow(no_panic, every memory belongs to a class; BusNetwork::new validated the K-class layout)
                let c = self.class_of_memory(memory).expect("validated k-class");
                0..self.kclass_bus_count(c)
            }
        }
    }

    /// Iterator over the memory indices wired to `bus`.
    ///
    /// # Panics
    ///
    /// Panics if `bus` is out of range.
    pub fn memories_of_bus(&self, bus: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(bus < self.b, "bus index {bus} out of range ({})", self.b);
        (0..self.m).filter(move |&j| self.connects(bus, j))
    }

    /// Number of classes `K` (only for [`ConnectionScheme::KClasses`]).
    pub fn class_count(&self) -> Option<usize> {
        match &self.scheme {
            ConnectionScheme::KClasses { class_sizes } => Some(class_sizes.len()),
            _ => None,
        }
    }

    /// The 0-based class index of `memory` (paper class `C_{c+1}`), or `None`
    /// for non-K-class schemes.
    pub fn class_of_memory(&self, memory: usize) -> Option<usize> {
        if self.class_offsets.is_empty() || memory >= self.m {
            return None;
        }
        // class_offsets = [start_0, start_1, ..., m]; find the class whose
        // range contains `memory`.
        Some(
            self.class_offsets
                .partition_point(|&start| start <= memory)
                .saturating_sub(1),
        )
    }

    /// Memory indices of class `c` (0-based), or `None` for other schemes or
    /// out-of-range classes.
    pub fn memories_of_class(&self, c: usize) -> Option<std::ops::Range<usize>> {
        match &self.scheme {
            ConnectionScheme::KClasses { class_sizes } if c < class_sizes.len() => {
                Some(self.class_offsets[c]..self.class_offsets[c + 1])
            }
            _ => None,
        }
    }

    /// Number of buses class `c` (0-based) attaches to: the paper's
    /// `j + B − K` with `j = c + 1`.
    ///
    /// # Panics
    ///
    /// Panics if the scheme is not K-class (internal helper exposed for the
    /// arbiters; use [`BusNetwork::class_count`] to guard).
    pub fn kclass_bus_count(&self, c: usize) -> usize {
        let k = self
            .class_count()
            // lint:allow(no_panic, documented `# Panics` precondition of this internal arbiter helper)
            .expect("kclass_bus_count requires a K-class scheme");
        assert!(c < k, "class index {c} out of range ({k})");
        c + 1 + self.b - k
    }

    /// Number of groups `g` (only for [`ConnectionScheme::PartialGroups`]).
    pub fn group_count(&self) -> Option<usize> {
        match &self.scheme {
            ConnectionScheme::PartialGroups { groups } => Some(*groups),
            _ => None,
        }
    }

    /// The 0-based group of `memory`, or `None` for non-grouped schemes.
    pub fn group_of_memory(&self, memory: usize) -> Option<usize> {
        match &self.scheme {
            ConnectionScheme::PartialGroups { groups } if memory < self.m => {
                Some(memory / (self.m / groups))
            }
            _ => None,
        }
    }

    /// Cost and fault-tolerance summary (the paper's Table I row for this
    /// network).
    pub fn cost(&self) -> CostSummary {
        CostSummary::for_network(self)
    }

    /// The paper's *degree of fault tolerance*: the largest number of bus
    /// failures the network is guaranteed to survive with every memory still
    /// reachable.
    ///
    /// * full: `B − 1`;
    /// * single: `0`;
    /// * partial with `g` groups: `B/g − 1`;
    /// * `K` classes: `B − K` (class `C_1` has `B − K + 1` buses);
    /// * crossbar: `0` (no bus redundancy to speak of — each processor-memory
    ///   pair has exactly one crosspoint).
    pub fn fault_tolerance_degree(&self) -> usize {
        match &self.scheme {
            ConnectionScheme::Full => self.b - 1,
            ConnectionScheme::Single { .. } | ConnectionScheme::Crossbar => 0,
            ConnectionScheme::PartialGroups { groups } => self.b / groups - 1,
            ConnectionScheme::KClasses { class_sizes } => self.b - class_sizes.len(),
        }
    }
}

impl std::fmt::Display for BusNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{}x{} network with {}",
            self.n,
            self.m,
            self.b,
            self.kind()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3() -> BusNetwork {
        // Paper Fig. 3: 3 × 6 × 4 partial bus network with three classes.
        BusNetwork::new(3, 6, 4, ConnectionScheme::uniform_classes(6, 3).unwrap()).unwrap()
    }

    #[test]
    fn full_connectivity() {
        let net = BusNetwork::new(4, 8, 3, ConnectionScheme::Full).unwrap();
        for bus in 0..3 {
            for mem in 0..8 {
                assert!(net.connects(bus, mem));
            }
        }
        assert_eq!(net.capacity(), 3);
        assert_eq!(net.fault_tolerance_degree(), 2);
    }

    #[test]
    fn rejects_too_many_buses() {
        assert_eq!(
            BusNetwork::new(8, 4, 5, ConnectionScheme::Full).unwrap_err(),
            TopologyError::TooManyBuses { buses: 5, limit: 4 }
        );
        // B > N alone is allowed: the paper's own Fig. 3 is 3 × 6 × 4.
        assert!(BusNetwork::new(3, 6, 4, ConnectionScheme::Full).is_ok());
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(matches!(
            BusNetwork::new(0, 8, 2, ConnectionScheme::Full),
            Err(TopologyError::ZeroDimension {
                dimension: "processors"
            })
        ));
        assert!(matches!(
            BusNetwork::new(8, 0, 2, ConnectionScheme::Full),
            Err(TopologyError::ZeroDimension {
                dimension: "memories"
            })
        ));
        assert!(matches!(
            BusNetwork::new(8, 8, 0, ConnectionScheme::Full),
            Err(TopologyError::ZeroDimension { dimension: "buses" })
        ));
    }

    #[test]
    fn single_connectivity_and_validation() {
        let scheme = ConnectionScheme::balanced_single(8, 4).unwrap();
        let net = BusNetwork::new(8, 8, 4, scheme).unwrap();
        assert!(net.connects(0, 0));
        assert!(net.connects(0, 1));
        assert!(!net.connects(0, 2));
        assert_eq!(net.buses_of_memory(5).collect::<Vec<_>>(), vec![2]);
        assert_eq!(net.memories_of_bus(3).collect::<Vec<_>>(), vec![6, 7]);
        assert_eq!(net.fault_tolerance_degree(), 0);
    }

    #[test]
    fn single_rejects_bad_assignments() {
        // Wrong length.
        let err = BusNetwork::new(
            4,
            4,
            2,
            ConnectionScheme::Single {
                assignment: vec![0, 1],
            },
        )
        .unwrap_err();
        assert!(matches!(err, TopologyError::BadSingleAssignment { .. }));
        // Bus out of range.
        let err = BusNetwork::new(
            4,
            4,
            2,
            ConnectionScheme::Single {
                assignment: vec![0, 1, 0, 7],
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            TopologyError::SingleAssignmentBusOutOfRange {
                memory: 3,
                bus: 7,
                buses: 2
            }
        ));
        // Empty bus.
        let err = BusNetwork::new(
            4,
            4,
            2,
            ConnectionScheme::Single {
                assignment: vec![0, 0, 0, 0],
            },
        )
        .unwrap_err();
        assert_eq!(err, TopologyError::EmptyBus { bus: 1 });
    }

    #[test]
    fn partial_groups_connectivity() {
        // Paper Fig. 2 shape: g = 2, memories split in halves, buses too.
        let net = BusNetwork::new(8, 8, 4, ConnectionScheme::PartialGroups { groups: 2 }).unwrap();
        // Group 0: memories 0..4 on buses 0..2.
        assert!(net.connects(0, 0));
        assert!(net.connects(1, 3));
        assert!(!net.connects(2, 0));
        // Group 1: memories 4..8 on buses 2..4.
        assert!(net.connects(2, 4));
        assert!(!net.connects(0, 7));
        assert_eq!(net.group_of_memory(5), Some(1));
        assert_eq!(net.fault_tolerance_degree(), 1);
    }

    #[test]
    fn partial_groups_validation() {
        assert!(matches!(
            BusNetwork::new(8, 8, 4, ConnectionScheme::PartialGroups { groups: 3 }),
            Err(TopologyError::GroupsDontDivide { .. })
        ));
        assert!(matches!(
            BusNetwork::new(8, 8, 4, ConnectionScheme::PartialGroups { groups: 0 }),
            Err(TopologyError::InvalidGroupCount { .. })
        ));
        assert!(matches!(
            BusNetwork::new(8, 8, 4, ConnectionScheme::PartialGroups { groups: 5 }),
            Err(TopologyError::InvalidGroupCount { .. })
        ));
    }

    #[test]
    fn kclass_fig3_connectivity() {
        let net = fig3();
        // Class C_1 (memories 0, 1): buses 1..(1+4-3) = buses 0..2 (0-based).
        assert_eq!(net.buses_of_memory(0).collect::<Vec<_>>(), vec![0, 1]);
        // Class C_2 (memories 2, 3): buses 0..3.
        assert_eq!(net.buses_of_memory(2).collect::<Vec<_>>(), vec![0, 1, 2]);
        // Class C_3 (memories 4, 5): all four buses.
        assert_eq!(net.buses_of_memory(4).count(), 4);
        // Bus 3 is touched only by class C_3; bus 0 by everyone.
        assert_eq!(net.memories_of_bus(3).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(net.memories_of_bus(0).count(), 6);
        assert_eq!(net.class_of_memory(0), Some(0));
        assert_eq!(net.class_of_memory(3), Some(1));
        assert_eq!(net.class_of_memory(5), Some(2));
        assert_eq!(net.memories_of_class(1), Some(2..4));
        assert_eq!(net.fault_tolerance_degree(), 1);
    }

    #[test]
    fn kclass_validation() {
        // K > B.
        assert!(matches!(
            BusNetwork::new(
                8,
                8,
                2,
                ConnectionScheme::KClasses {
                    class_sizes: vec![2, 2, 4]
                }
            ),
            Err(TopologyError::InvalidClassCount { .. })
        ));
        // Sizes don't sum to M.
        assert!(matches!(
            BusNetwork::new(
                8,
                8,
                4,
                ConnectionScheme::KClasses {
                    class_sizes: vec![2, 2]
                }
            ),
            Err(TopologyError::BadClassSizes { .. })
        ));
        // Empty class.
        assert!(matches!(
            BusNetwork::new(
                8,
                8,
                4,
                ConnectionScheme::KClasses {
                    class_sizes: vec![0, 4, 4]
                }
            ),
            Err(TopologyError::BadClassSizes { .. })
        ));
    }

    #[test]
    fn crossbar_capacity_ignores_buses() {
        let net = BusNetwork::new(8, 6, 1, ConnectionScheme::Crossbar).unwrap();
        assert_eq!(net.capacity(), 6);
        assert!(net.connects(0, 5));
    }

    #[test]
    fn k_equals_one_is_full_connection() {
        // With K = 1 every memory is in class C_1 attached to B buses.
        let net =
            BusNetwork::new(8, 8, 4, ConnectionScheme::uniform_classes(8, 1).unwrap()).unwrap();
        for mem in 0..8 {
            assert_eq!(net.buses_of_memory(mem).count(), 4);
        }
        assert_eq!(net.fault_tolerance_degree(), 3);
    }

    #[test]
    fn display_is_informative() {
        let net = fig3();
        assert_eq!(
            net.to_string(),
            "3x6x4 network with partial bus network with K classes"
        );
    }
}
