//! Bus-failure modeling: fault masks and degraded network views.
//!
//! The paper motivates multiple-bus networks partly by fault tolerance ("in
//! case a bus fails, the multiprocessor system can still function with other
//! nonfaulty ones") and assigns each scheme a *degree* of fault tolerance in
//! Table I. This module makes that operational: a [`FaultMask`] records which
//! buses are down, and a [`DegradedView`] answers reachability and residual-
//! redundancy questions that the analysis and simulator use to quantify
//! degraded-mode bandwidth.

use crate::{BusNetwork, TopologyError};
use serde::{Deserialize, Serialize};

/// A set of failed buses in a `B`-bus network.
///
/// # Examples
///
/// ```
/// use mbus_topology::FaultMask;
///
/// let mut mask = FaultMask::none(4);
/// mask.fail(2)?;
/// assert!(mask.is_failed(2));
/// assert_eq!(mask.alive_count(), 3);
/// # Ok::<(), mbus_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultMask {
    failed: Vec<bool>,
}

impl FaultMask {
    /// A mask over `buses` buses with no failures.
    pub fn none(buses: usize) -> Self {
        Self {
            failed: vec![false; buses],
        }
    }

    /// A mask with the listed buses failed.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::IndexOutOfRange`] if any index is `≥ buses`.
    pub fn with_failures(buses: usize, failures: &[usize]) -> Result<Self, TopologyError> {
        let mut mask = Self::none(buses);
        for &bus in failures {
            mask.fail(bus)?;
        }
        Ok(mask)
    }

    /// Number of buses the mask covers.
    pub fn buses(&self) -> usize {
        self.failed.len()
    }

    /// Marks `bus` failed (idempotent).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::IndexOutOfRange`] if `bus` is out of range.
    pub fn fail(&mut self, bus: usize) -> Result<(), TopologyError> {
        match self.failed.get_mut(bus) {
            Some(slot) => {
                *slot = true;
                Ok(())
            }
            None => Err(TopologyError::IndexOutOfRange {
                kind: "bus",
                index: bus,
                len: self.failed.len(),
            }),
        }
    }

    /// Marks `bus` repaired (idempotent).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::IndexOutOfRange`] if `bus` is out of range.
    pub fn repair(&mut self, bus: usize) -> Result<(), TopologyError> {
        match self.failed.get_mut(bus) {
            Some(slot) => {
                *slot = false;
                Ok(())
            }
            None => Err(TopologyError::IndexOutOfRange {
                kind: "bus",
                index: bus,
                len: self.failed.len(),
            }),
        }
    }

    /// Whether `bus` is failed; out-of-range buses read as not failed.
    pub fn is_failed(&self, bus: usize) -> bool {
        self.failed.get(bus).copied().unwrap_or(false)
    }

    /// Whether `bus` is alive.
    pub fn is_alive(&self, bus: usize) -> bool {
        !self.is_failed(bus)
    }

    /// Number of failed buses.
    pub fn failed_count(&self) -> usize {
        self.failed.iter().filter(|&&f| f).count()
    }

    /// Number of alive buses.
    pub fn alive_count(&self) -> usize {
        self.failed.len() - self.failed_count()
    }

    /// Iterator over failed bus indices.
    pub fn iter_failed(&self) -> impl Iterator<Item = usize> + '_ {
        self.failed
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| i)
    }

    /// Iterator over alive bus indices.
    pub fn iter_alive(&self) -> impl Iterator<Item = usize> + '_ {
        self.failed
            .iter()
            .enumerate()
            .filter(|(_, &f)| !f)
            .map(|(i, _)| i)
    }
}

/// The canonical text form `"buses:failed,failed,..."` — e.g. `"4:1,3"` for
/// a 4-bus mask with buses 1 and 3 down, `"4:"` for a healthy one. Round-
/// trips through [`FaultMask::from_str`](std::str::FromStr), which is how
/// masks persist in campaign reports and CLI arguments.
impl std::fmt::Display for FaultMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:", self.buses())?;
        for (i, bus) in self.iter_failed().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{bus}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for FaultMask {
    type Err = TopologyError;

    /// Parses the [`Display`](std::fmt::Display) form. Failed buses may come
    /// in any order and repeat; they must all lie below the bus count.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |reason: String| TopologyError::BadMaskSyntax { reason };
        let (buses, failed) = s
            .split_once(':')
            .ok_or_else(|| bad(format!("'{s}' is missing the ':' separator")))?;
        let buses: usize = buses
            .parse()
            .map_err(|_| bad(format!("bad bus count '{buses}'")))?;
        if buses == 0 {
            return Err(bad("bus count must be positive".into()));
        }
        let mut mask = Self::none(buses);
        if failed.is_empty() {
            return Ok(mask);
        }
        for part in failed.split(',') {
            let bus: usize = part
                .trim()
                .parse()
                .map_err(|_| bad(format!("bad bus index '{part}'")))?;
            mask.fail(bus)?;
        }
        Ok(mask)
    }
}

/// A network observed through a fault mask.
///
/// # Examples
///
/// ```
/// use mbus_topology::{BusNetwork, ConnectionScheme, DegradedView, FaultMask};
///
/// let net = BusNetwork::new(8, 8, 4, ConnectionScheme::balanced_single(8, 4)?)?;
/// let mask = FaultMask::with_failures(4, &[1])?;
/// let view = DegradedView::new(&net, &mask)?;
/// // Single connection: the two memories on bus 1 become unreachable.
/// assert_eq!(view.accessible_memory_count(), 6);
/// # Ok::<(), mbus_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DegradedView<'a> {
    network: &'a BusNetwork,
    mask: &'a FaultMask,
}

impl<'a> DegradedView<'a> {
    /// Pairs a network with a fault mask.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::IndexOutOfRange`] if the mask covers a
    /// different number of buses than the network has.
    pub fn new(network: &'a BusNetwork, mask: &'a FaultMask) -> Result<Self, TopologyError> {
        if mask.buses() != network.buses() {
            return Err(TopologyError::IndexOutOfRange {
                kind: "bus",
                index: mask.buses(),
                len: network.buses(),
            });
        }
        Ok(Self { network, mask })
    }

    /// The underlying network.
    pub fn network(&self) -> &BusNetwork {
        self.network
    }

    /// The fault mask.
    pub fn mask(&self) -> &FaultMask {
        self.mask
    }

    /// Number of *alive* buses wired to `memory`.
    ///
    /// # Panics
    ///
    /// Panics if `memory` is out of range.
    pub fn alive_buses_of_memory(&self, memory: usize) -> usize {
        self.network
            .buses_of_memory(memory)
            .filter(|&bus| self.mask.is_alive(bus))
            .count()
    }

    /// Whether `memory` is still reachable (at least one alive bus).
    ///
    /// The crossbar never loses reachability to bus failures (it has no
    /// buses), so this is always `true` there.
    ///
    /// # Panics
    ///
    /// Panics if `memory` is out of range.
    pub fn is_memory_accessible(&self, memory: usize) -> bool {
        use crate::SchemeKind;
        if self.network.kind() == SchemeKind::Crossbar {
            return true;
        }
        self.alive_buses_of_memory(memory) > 0
    }

    /// Number of memories still reachable.
    pub fn accessible_memory_count(&self) -> usize {
        (0..self.network.memories())
            .filter(|&j| self.is_memory_accessible(j))
            .count()
    }

    /// Fraction of memories still reachable, in `[0, 1]`.
    pub fn accessible_fraction(&self) -> f64 {
        self.accessible_memory_count() as f64 / self.network.memories() as f64
    }

    /// The minimum residual redundancy over all memories: how many *more*
    /// bus failures the weakest memory can survive. Zero means some memory is
    /// one failure from isolation (or already isolated).
    pub fn min_residual_redundancy(&self) -> usize {
        (0..self.network.memories())
            .map(|j| self.alive_buses_of_memory(j).saturating_sub(1))
            .min()
            .unwrap_or(0)
    }

    /// Whether every memory is still reachable.
    pub fn fully_connected(&self) -> bool {
        self.accessible_memory_count() == self.network.memories()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConnectionScheme;

    fn full_net() -> BusNetwork {
        BusNetwork::new(8, 8, 4, ConnectionScheme::Full).unwrap()
    }

    #[test]
    fn mask_basics() {
        let mut mask = FaultMask::none(4);
        assert_eq!(mask.alive_count(), 4);
        mask.fail(0).unwrap();
        mask.fail(0).unwrap(); // idempotent
        assert_eq!(mask.failed_count(), 1);
        assert_eq!(mask.iter_failed().collect::<Vec<_>>(), vec![0]);
        assert_eq!(mask.iter_alive().collect::<Vec<_>>(), vec![1, 2, 3]);
        mask.repair(0).unwrap();
        assert_eq!(mask.failed_count(), 0);
        assert!(mask.fail(9).is_err());
        assert!(mask.repair(9).is_err());
    }

    #[test]
    fn mask_length_must_match_network() {
        let net = full_net();
        let mask = FaultMask::none(3);
        assert!(DegradedView::new(&net, &mask).is_err());
    }

    #[test]
    fn full_scheme_survives_to_the_degree() {
        let net = full_net();
        let degree = net.fault_tolerance_degree();
        assert_eq!(degree, 3);
        // Fail exactly `degree` buses: still fully connected.
        let mask = FaultMask::with_failures(4, &[0, 1, 2]).unwrap();
        let view = DegradedView::new(&net, &mask).unwrap();
        assert!(view.fully_connected());
        assert_eq!(view.min_residual_redundancy(), 0);
        // One more failure disconnects everything.
        let mask = FaultMask::with_failures(4, &[0, 1, 2, 3]).unwrap();
        let view = DegradedView::new(&net, &mask).unwrap();
        assert_eq!(view.accessible_memory_count(), 0);
    }

    #[test]
    fn single_scheme_loses_bus_memories() {
        let net =
            BusNetwork::new(8, 8, 4, ConnectionScheme::balanced_single(8, 4).unwrap()).unwrap();
        let mask = FaultMask::with_failures(4, &[3]).unwrap();
        let view = DegradedView::new(&net, &mask).unwrap();
        assert!(!view.is_memory_accessible(6));
        assert!(!view.is_memory_accessible(7));
        assert!(view.is_memory_accessible(0));
        assert_eq!(view.accessible_fraction(), 0.75);
    }

    #[test]
    fn partial_groups_survive_within_group() {
        let net = BusNetwork::new(8, 8, 4, ConnectionScheme::PartialGroups { groups: 2 }).unwrap();
        // Lose one bus of group 0: group 0 memories survive on the other.
        let mask = FaultMask::with_failures(4, &[0]).unwrap();
        let view = DegradedView::new(&net, &mask).unwrap();
        assert!(view.fully_connected());
        // Lose both buses of group 0: its four memories are gone.
        let mask = FaultMask::with_failures(4, &[0, 1]).unwrap();
        let view = DegradedView::new(&net, &mask).unwrap();
        assert_eq!(view.accessible_memory_count(), 4);
    }

    #[test]
    fn kclass_flexible_fault_tolerance() {
        // Fig. 3 network: class C_1 on buses {0,1}, C_2 on {0,1,2},
        // C_3 on {0,1,2,3}.
        let net =
            BusNetwork::new(3, 6, 4, ConnectionScheme::uniform_classes(6, 3).unwrap()).unwrap();
        // Failing the two low buses isolates class C_1 only.
        let mask = FaultMask::with_failures(4, &[0, 1]).unwrap();
        let view = DegradedView::new(&net, &mask).unwrap();
        assert!(!view.is_memory_accessible(0));
        assert!(!view.is_memory_accessible(1));
        assert!(view.is_memory_accessible(2)); // C_2 still has bus 2
        assert!(view.is_memory_accessible(4)); // C_3 still has buses 2, 3
                                               // Failing the two high buses harms nobody's reachability.
        let mask = FaultMask::with_failures(4, &[2, 3]).unwrap();
        let view = DegradedView::new(&net, &mask).unwrap();
        assert!(view.fully_connected());
    }

    #[test]
    fn crossbar_is_immune_to_bus_masks() {
        let net = BusNetwork::new(4, 4, 1, ConnectionScheme::Crossbar).unwrap();
        let mask = FaultMask::with_failures(1, &[0]).unwrap();
        let view = DegradedView::new(&net, &mask).unwrap();
        assert!(view.fully_connected());
    }

    #[test]
    fn mask_text_round_trips() {
        let mask = FaultMask::with_failures(4, &[1, 3]).unwrap();
        assert_eq!(mask.to_string(), "4:1,3");
        assert_eq!("4:1,3".parse::<FaultMask>().unwrap(), mask);
        // A healthy mask renders with an empty failure list.
        let healthy = FaultMask::none(6);
        assert_eq!(healthy.to_string(), "6:");
        assert_eq!("6:".parse::<FaultMask>().unwrap(), healthy);
        // Order and duplicates in the input are normalized away.
        assert_eq!("4:3,1,3".parse::<FaultMask>().unwrap(), mask);
        assert_eq!("4: 3 , 1 ".parse::<FaultMask>().unwrap(), mask);
    }

    #[test]
    fn mask_parse_rejects_malformed_specs() {
        let syntax = |s: &str| {
            assert!(
                matches!(
                    s.parse::<FaultMask>(),
                    Err(TopologyError::BadMaskSyntax { .. })
                ),
                "'{s}' should be a syntax error"
            );
        };
        syntax("4"); // no separator
        syntax("x:1");
        syntax("0:"); // zero buses
        syntax("4:a");
        syntax("4:1,,3"); // empty element
                          // Out-of-range failures surface as the usual index error.
        assert!(matches!(
            "4:4".parse::<FaultMask>(),
            Err(TopologyError::IndexOutOfRange {
                index: 4,
                len: 4,
                ..
            })
        ));
    }

    #[test]
    fn degraded_view_exposes_its_parts() {
        let net = full_net();
        let mask = FaultMask::with_failures(4, &[2]).unwrap();
        let view = DegradedView::new(&net, &mask).unwrap();
        assert_eq!(view.network().buses(), 4);
        assert_eq!(view.mask().failed_count(), 1);
        assert_eq!(view.alive_buses_of_memory(0), 3);
        // Full connection: redundancy degrades uniformly with each failure.
        assert_eq!(view.min_residual_redundancy(), 2);
    }

    proptest::proptest! {
        #[test]
        fn mask_display_parse_round_trip(
            buses in 1usize..32,
            failures in proptest::collection::vec(0usize..32, 0..8),
        ) {
            let failures: Vec<usize> =
                failures.into_iter().filter(|&bus| bus < buses).collect();
            let mask = FaultMask::with_failures(buses, &failures).unwrap();
            let parsed: FaultMask = mask.to_string().parse().unwrap();
            proptest::prop_assert_eq!(parsed, mask);
        }
    }
}
