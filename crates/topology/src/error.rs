//! Error type for topology construction and validation.

/// Error returned when an `N × M × B` network description is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// One of `N`, `M`, `B` was zero.
    ZeroDimension {
        /// Which dimension was zero: `"processors"`, `"memories"`, or
        /// `"buses"`.
        dimension: &'static str,
    },
    /// The paper requires `B ≤ min(M, N)`.
    TooManyBuses {
        /// Requested number of buses.
        buses: usize,
        /// `min(M, N)` for the network.
        limit: usize,
    },
    /// A partial bus network needs `g` to divide both `M` and `B`.
    GroupsDontDivide {
        /// Number of groups `g`.
        groups: usize,
        /// Number of memories `M`.
        memories: usize,
        /// Number of buses `B`.
        buses: usize,
    },
    /// `g` must be at least one and at most `B`.
    InvalidGroupCount {
        /// Number of groups `g`.
        groups: usize,
        /// Number of buses `B`.
        buses: usize,
    },
    /// A K-class network needs `1 ≤ K ≤ B`.
    InvalidClassCount {
        /// Number of classes `K`.
        classes: usize,
        /// Number of buses `B`.
        buses: usize,
    },
    /// Class sizes must sum to `M` and every class must be non-empty.
    BadClassSizes {
        /// Sum of the provided class sizes.
        total: usize,
        /// Number of memories `M`.
        memories: usize,
    },
    /// A single-connection assignment must map every memory to a valid bus.
    BadSingleAssignment {
        /// Length of the provided assignment vector.
        assigned: usize,
        /// Number of memories `M`.
        memories: usize,
    },
    /// A single-connection assignment referenced a bus index `≥ B`.
    SingleAssignmentBusOutOfRange {
        /// The memory whose assignment is invalid.
        memory: usize,
        /// The out-of-range bus index.
        bus: usize,
        /// Number of buses `B`.
        buses: usize,
    },
    /// Every bus in a single-connection network must serve at least one
    /// memory (otherwise the network is a smaller network in disguise).
    EmptyBus {
        /// The bus with no attached memory.
        bus: usize,
    },
    /// An index (bus/memory/processor) was out of range for the network.
    IndexOutOfRange {
        /// What kind of index: `"bus"`, `"memory"`, or `"processor"`.
        kind: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive upper bound.
        len: usize,
    },
    /// The network has too many memories for a `2^M`-entry served-set
    /// lookup table.
    TableTooLarge {
        /// Number of memories `M`.
        memories: usize,
        /// The largest supported `M`.
        limit: usize,
    },
    /// A textual fault-mask spec (`"buses:failed,failed,..."`) did not parse.
    BadMaskSyntax {
        /// What was wrong with the input.
        reason: String,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroDimension { dimension } => {
                write!(f, "number of {dimension} must be positive")
            }
            Self::TooManyBuses { buses, limit } => write!(
                f,
                "B = {buses} exceeds min(M, N) = {limit}; the paper requires B <= min(M, N)"
            ),
            Self::GroupsDontDivide {
                groups,
                memories,
                buses,
            } => write!(
                f,
                "g = {groups} must divide both M = {memories} and B = {buses}"
            ),
            Self::InvalidGroupCount { groups, buses } => {
                write!(
                    f,
                    "group count g = {groups} must satisfy 1 <= g <= B = {buses}"
                )
            }
            Self::InvalidClassCount { classes, buses } => {
                write!(
                    f,
                    "class count K = {classes} must satisfy 1 <= K <= B = {buses}"
                )
            }
            Self::BadClassSizes { total, memories } => write!(
                f,
                "class sizes sum to {total} but the network has M = {memories} memories \
                 (all classes must be non-empty)"
            ),
            Self::BadSingleAssignment { assigned, memories } => write!(
                f,
                "single-connection assignment covers {assigned} memories, expected {memories}"
            ),
            Self::SingleAssignmentBusOutOfRange { memory, bus, buses } => write!(
                f,
                "memory {memory} is assigned to bus {bus}, but the network has only {buses} buses"
            ),
            Self::EmptyBus { bus } => {
                write!(
                    f,
                    "bus {bus} has no memory attached in a single-connection network"
                )
            }
            Self::IndexOutOfRange { kind, index, len } => {
                write!(f, "{kind} index {index} out of range (network has {len})")
            }
            Self::TableTooLarge { memories, limit } => write!(
                f,
                "M = {memories} memories exceeds the served-table limit of {limit} \
                 (the table has 2^M entries)"
            ),
            Self::BadMaskSyntax { reason } => {
                write!(f, "bad fault-mask spec: {reason}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}
