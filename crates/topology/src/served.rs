//! Served-set lookup tables.
//!
//! For every connection scheme of the paper, the number of requests served
//! in a cycle is a deterministic function of *which set of memories has at
//! least one pending request* (the per-memory stage-1 arbiters collapse
//! duplicates, and stage 2 only sees the selected memories). That function
//! is pure topology, so it lives here: [`served_count`] evaluates one
//! requested-set bitmask, and [`ServedTable`] tabulates all `2^M` of them
//! once so the exact enumerators and the simulator's arbiter can replace
//! per-cycle recomputation with an indexed load.
//!
//! Counts fit in a `u8` because `M ≤ MAX_TABLE_MEMORIES = 20 < 256`; the
//! full table for `M = 20` is one `2^20`-byte (1 MiB) allocation.
//!
//! All counts assume a fault-free network — a failed bus changes the
//! served function, so callers with an active
//! [`FaultMask`](crate::FaultMask) must fall back to direct arbitration.

use crate::{BusNetwork, ConnectionScheme, TopologyError};

/// Largest `M` for which a `2^M`-entry table is built (1 MiB of `u8`s).
pub const MAX_TABLE_MEMORIES: usize = 20;

/// Per-scheme mask data for evaluating one requested set in `O(B)` or
/// better, without touching per-memory iterators.
#[derive(Debug, Clone, PartialEq, Eq)]
enum MaskPlan {
    /// Crossbar: every requested module is served.
    Crossbar,
    /// Full connection: `min(|requested|, B)`.
    Full { buses: usize },
    /// Single connection: one service per bus whose memory set intersects
    /// the requested set.
    Single { bus_masks: Vec<u64> },
    /// Partial groups: `min(|requested ∩ group|, B/g)` per group.
    Partial {
        group_masks: Vec<u64>,
        per_bus: usize,
    },
    /// K classes: bus `i` (1-based) is busy iff some class `j` with
    /// `R_j > 0` spills onto it, i.e. `top_j − R_j < i ≤ top_j`; the busy
    /// buses are a union of intervals, collected as a bitmask.
    KClasses {
        class_masks: Vec<u64>,
        tops: Vec<usize>,
    },
}

impl MaskPlan {
    fn build(net: &BusNetwork) -> Self {
        match net.scheme() {
            ConnectionScheme::Crossbar => Self::Crossbar,
            ConnectionScheme::Full => Self::Full { buses: net.buses() },
            ConnectionScheme::Single { .. } => Self::Single {
                bus_masks: (0..net.buses())
                    .map(|bus| net.memories_of_bus(bus).fold(0u64, |m, j| m | (1 << j)))
                    .collect(),
            },
            ConnectionScheme::PartialGroups { groups } => {
                let per_mem = net.memories() / groups;
                Self::Partial {
                    group_masks: (0..*groups)
                        .map(|q| (q * per_mem..(q + 1) * per_mem).fold(0u64, |m, j| m | (1 << j)))
                        .collect(),
                    per_bus: net.buses() / groups,
                }
            }
            ConnectionScheme::KClasses { class_sizes } => {
                let k = class_sizes.len();
                Self::KClasses {
                    class_masks: (0..k)
                        .map(|c| {
                            net.memories_of_class(c)
                                // lint:allow(no_panic, class ranges exist for every class index; validated by BusNetwork::new)
                                .expect("validated K-class")
                                .fold(0u64, |m, j| m | (1 << j))
                        })
                        .collect(),
                    tops: (0..k).map(|c| net.kclass_bus_count(c)).collect(),
                }
            }
        }
    }

    #[inline]
    fn served(&self, mask: u64) -> usize {
        match self {
            Self::Crossbar => mask.count_ones() as usize,
            Self::Full { buses } => (mask.count_ones() as usize).min(*buses),
            Self::Single { bus_masks } => bus_masks
                .iter()
                .filter(|&&bus_mask| mask & bus_mask != 0)
                .count(),
            Self::Partial {
                group_masks,
                per_bus,
            } => group_masks
                .iter()
                .map(|&group_mask| ((mask & group_mask).count_ones() as usize).min(*per_bus))
                .sum(),
            Self::KClasses { class_masks, tops } => {
                // Busy buses form a union of intervals (top_j − R_j, top_j];
                // accumulate it as a bus bitmask and count.
                let mut busy = 0u64;
                for (&class_mask, &top) in class_masks.iter().zip(tops) {
                    let requested = (mask & class_mask).count_ones() as usize;
                    if requested == 0 {
                        continue;
                    }
                    let low = top.saturating_sub(requested);
                    busy |= ((1u64 << top) - 1) & !((1u64 << low) - 1);
                }
                busy.count_ones() as usize
            }
        }
    }
}

/// The number of requests served in one fault-free cycle, given the
/// requested-set bitmask (bit `j` set ⇔ memory `j` has at least one
/// pending request).
///
/// This is the single-mask oracle behind [`ServedTable`]; prefer the table
/// when evaluating many masks for the same network.
///
/// # Panics
///
/// Panics if `mask` has bits at or above `net.memories()` (debug builds
/// assert; release builds may silently count phantom memories).
pub fn served_count(net: &BusNetwork, mask: u64) -> usize {
    debug_assert!(
        net.memories() >= 64 || mask < (1u64 << net.memories()),
        "mask {mask:#x} exceeds 2^M"
    );
    MaskPlan::build(net).served(mask)
}

/// A `2^M`-entry lookup table of served counts, indexed by requested-set
/// bitmask.
///
/// # Examples
///
/// ```
/// use mbus_topology::{served::ServedTable, BusNetwork, ConnectionScheme};
///
/// let net = BusNetwork::new(8, 8, 3, ConnectionScheme::Full)?;
/// let table = ServedTable::build(&net)?;
/// // Five memories requested, three buses: three served.
/// assert_eq!(table.served(0b10111001), 3);
/// # Ok::<(), mbus_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedTable {
    memories: usize,
    counts: Vec<u8>,
}

impl ServedTable {
    /// Tabulates the served count for every requested set of `net`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::TableTooLarge`] when
    /// `net.memories() > MAX_TABLE_MEMORIES`.
    pub fn build(net: &BusNetwork) -> Result<Self, TopologyError> {
        let m = net.memories();
        if m > MAX_TABLE_MEMORIES {
            return Err(TopologyError::TableTooLarge {
                memories: m,
                limit: MAX_TABLE_MEMORIES,
            });
        }
        let plan = MaskPlan::build(net);
        // lint:allow(lossy_cast, served counts are bounded by M <= MAX_TABLE_MEMORIES = 20 < 256)
        let counts = (0..1u64 << m).map(|mask| plan.served(mask) as u8).collect();
        Ok(Self {
            memories: m,
            counts,
        })
    }

    /// Number of memories `M` the table covers.
    pub fn memories(&self) -> usize {
        self.memories
    }

    /// Number of entries (`2^M`).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table is empty (never true for a valid network).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Served count for the requested-set bitmask `mask`.
    ///
    /// # Panics
    ///
    /// Panics if `mask >= 2^M`.
    #[inline]
    pub fn served(&self, mask: u64) -> usize {
        self.counts[mask as usize] as usize
    }

    /// The raw table, indexed by mask.
    pub fn as_slice(&self) -> &[u8] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(net: &BusNetwork) -> ServedTable {
        ServedTable::build(net).unwrap()
    }

    #[test]
    fn crossbar_counts_population() {
        let net = BusNetwork::new(6, 6, 1, ConnectionScheme::Crossbar).unwrap();
        let t = table(&net);
        assert_eq!(t.len(), 64);
        for mask in 0u64..64 {
            assert_eq!(t.served(mask), mask.count_ones() as usize);
        }
    }

    #[test]
    fn full_caps_at_buses() {
        let net = BusNetwork::new(8, 8, 3, ConnectionScheme::Full).unwrap();
        let t = table(&net);
        for mask in 0u64..256 {
            assert_eq!(t.served(mask), (mask.count_ones() as usize).min(3));
        }
    }

    #[test]
    fn single_counts_busy_buses() {
        let net =
            BusNetwork::new(8, 8, 4, ConnectionScheme::balanced_single(8, 4).unwrap()).unwrap();
        let t = table(&net);
        // Memories 0, 1 share bus 0.
        assert_eq!(t.served(0b11), 1);
        // Adding memory 7 (bus 3) adds one service.
        assert_eq!(t.served(0b1000_0011), 2);
        assert_eq!(t.served((1 << 8) - 1), 4);
    }

    #[test]
    fn partial_groups_cap_per_group() {
        let net = BusNetwork::new(8, 8, 4, ConnectionScheme::PartialGroups { groups: 2 }).unwrap();
        let t = table(&net);
        // Three requests in group 0 (cap 2), one in group 1.
        assert_eq!(t.served(0b0010_0111), 3);
        assert_eq!(t.served((1 << 8) - 1), 4);
    }

    #[test]
    fn kclass_matches_fig3_hand_checks() {
        let net =
            BusNetwork::new(6, 6, 4, ConnectionScheme::uniform_classes(6, 3).unwrap()).unwrap();
        let t = table(&net);
        // Both C_1 modules: buses 1 and 2 (1-based) busy.
        assert_eq!(t.served(0b000011), 2);
        // Plus one C_3 module on bus 4.
        assert_eq!(t.served(0b010011), 3);
        // Everything requested: all four buses busy.
        assert_eq!(t.served(0b111111), 4);
        // A single C_2 module takes its top bus.
        assert_eq!(t.served(0b000100), 1);
    }

    #[test]
    fn oracle_agrees_with_table_everywhere() {
        let nets = [
            BusNetwork::new(6, 6, 3, ConnectionScheme::Full).unwrap(),
            BusNetwork::new(6, 6, 3, ConnectionScheme::balanced_single(6, 3).unwrap()).unwrap(),
            BusNetwork::new(6, 6, 2, ConnectionScheme::PartialGroups { groups: 2 }).unwrap(),
            BusNetwork::new(6, 6, 4, ConnectionScheme::uniform_classes(6, 3).unwrap()).unwrap(),
            BusNetwork::new(6, 6, 1, ConnectionScheme::Crossbar).unwrap(),
        ];
        for net in &nets {
            let t = table(net);
            for mask in 0u64..t.len() as u64 {
                assert_eq!(
                    t.served(mask),
                    served_count(net, mask),
                    "{net} mask {mask:#b}"
                );
            }
        }
    }

    #[test]
    fn size_limit() {
        let net = BusNetwork::new(4, 24, 4, ConnectionScheme::Full).unwrap();
        assert!(matches!(
            ServedTable::build(&net),
            Err(TopologyError::TableTooLarge {
                memories: 24,
                limit: MAX_TABLE_MEMORIES
            })
        ));
    }
}
