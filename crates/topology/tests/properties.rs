//! Property-based tests for network topologies.

use mbus_topology::{BusNetwork, ConnectionScheme, DegradedView, FaultMask};
use proptest::prelude::*;

/// A strategy producing arbitrary valid networks up to 16 memories.
fn arbitrary_network() -> impl Strategy<Value = BusNetwork> {
    (1usize..=16, 1usize..=16).prop_flat_map(|(n, m)| {
        (Just(n), Just(m), 1usize..=m).prop_flat_map(|(n, m, b)| {
            prop_oneof![
                Just(ConnectionScheme::Full),
                Just(ConnectionScheme::Crossbar),
                Just(ConnectionScheme::balanced_single(m, b).unwrap()),
                Just(ConnectionScheme::strided_single(m, b).unwrap()),
                (1usize..=b).prop_filter_map("g must divide m and b", move |g| {
                    (m % g == 0 && b % g == 0)
                        .then_some(ConnectionScheme::PartialGroups { groups: g })
                }),
                (1usize..=b.min(m))
                    .prop_map(move |k| { ConnectionScheme::uniform_classes(m, k).unwrap() }),
            ]
            .prop_map(move |scheme| BusNetwork::new(n, m, b, scheme).unwrap())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `connects` is the consistent primitive: `buses_of_memory` and
    /// `memories_of_bus` are exactly its fibers.
    #[test]
    fn connectivity_views_agree(net in arbitrary_network()) {
        for memory in 0..net.memories() {
            let buses: Vec<usize> = net.buses_of_memory(memory).collect();
            for bus in 0..net.buses() {
                prop_assert_eq!(buses.contains(&bus), net.connects(bus, memory));
            }
        }
        for bus in 0..net.buses() {
            for memory in net.memories_of_bus(bus) {
                prop_assert!(net.connects(bus, memory));
            }
        }
    }

    /// Every memory touches at least one bus; fault-tolerance degree is
    /// the minimum connectivity minus one for every non-crossbar scheme.
    #[test]
    fn fault_tolerance_degree_is_min_connectivity(net in arbitrary_network()) {
        if net.kind() == mbus_topology::SchemeKind::Crossbar {
            return Ok(());
        }
        let min_conn = (0..net.memories())
            .map(|j| net.buses_of_memory(j).count())
            .min()
            .unwrap();
        prop_assert!(min_conn >= 1);
        // For grouped schemes the degree formula also equals min
        // connectivity − 1 (each memory's group/class has exactly that
        // many buses).
        prop_assert_eq!(net.fault_tolerance_degree(), min_conn - 1);
    }

    /// Connection counts: processor side is always B·N; memory side is the
    /// sum of per-memory bus degrees.
    #[test]
    fn connection_count_decomposes(net in arbitrary_network()) {
        if net.kind() == mbus_topology::SchemeKind::Crossbar {
            prop_assert_eq!(net.cost().connections, net.processors() * net.memories());
            return Ok(());
        }
        let memory_side: usize = (0..net.memories())
            .map(|j| net.buses_of_memory(j).count())
            .sum();
        prop_assert_eq!(
            net.cost().connections,
            net.buses() * net.processors() + memory_side
        );
    }

    /// Failing every bus a memory touches makes it inaccessible; failing
    /// any other set keeps it reachable.
    #[test]
    fn degraded_reachability_is_exact(net in arbitrary_network(), memory_pick in any::<prop::sample::Index>()) {
        if net.kind() == mbus_topology::SchemeKind::Crossbar {
            return Ok(());
        }
        let memory = memory_pick.index(net.memories());
        let its_buses: Vec<usize> = net.buses_of_memory(memory).collect();
        let mask = FaultMask::with_failures(net.buses(), &its_buses).unwrap();
        let view = DegradedView::new(&net, &mask).unwrap();
        prop_assert!(!view.is_memory_accessible(memory));
        // Failing everything *except* one of its buses keeps it reachable.
        let keep = its_buses[0];
        let others: Vec<usize> = (0..net.buses()).filter(|&b| b != keep).collect();
        let mask = FaultMask::with_failures(net.buses(), &others).unwrap();
        let view = DegradedView::new(&net, &mask).unwrap();
        prop_assert!(view.is_memory_accessible(memory));
    }

    /// Rendering never panics and scales with the network.
    #[test]
    fn renderers_total(net in arbitrary_network()) {
        let art = mbus_topology::render::ascii_diagram(&net);
        prop_assert!(art.lines().count() >= net.buses() + 4);
        let dot = mbus_topology::render::dot_graph(&net);
        prop_assert!(dot.starts_with("graph multibus"));
        let closes = dot.ends_with("}\n");
        prop_assert!(closes);
        // One edge per bus-memory connection.
        let memory_side: usize = (0..net.buses())
            .map(|bus| net.memories_of_bus(bus).count())
            .sum();
        prop_assert_eq!(dot.matches(" -- m").count(), memory_side);
    }
}
