//! The `mbus fabric` subcommand: hierarchical cluster-of-buses
//! evaluation — analytic decomposition, routed simulation, and the
//! depth/branching/locality sweep.

use crate::args::Args;
use mbus_core::fabric::{
    analyze_fabric, FabricAnalysis, FabricReport, FabricSimulator, FabricSpec, FabricTopology,
    LinkKind,
};
use mbus_core::sim::{FaultEvent, FaultEventKind, FaultSchedule, SimConfig};
use std::fmt::Write as _;

/// Parses a comma-separated list such as `--ks 4,4` or `--failed 2,5`.
fn parse_list<T: std::str::FromStr>(raw: &str, key: &str) -> Result<Vec<T>, String> {
    raw.split(',')
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{part}'"))
        })
        .collect()
}

/// The fabric experiment requested on the command line.
struct FabricRequest {
    spec: FabricSpec,
    rate: f64,
    cycles: u64,
    warmup: u64,
    seed: u64,
    failed: Vec<usize>,
}

fn request_from(args: &Args) -> Result<FabricRequest, String> {
    let ks = match args.get("ks") {
        Some(raw) => parse_list(raw, "ks")?,
        None => vec![4, 4],
    };
    let cycles = args.get_or("cycles", 20_000u64)?;
    Ok(FabricRequest {
        spec: FabricSpec {
            ks,
            local_buses: args.get_or("buses", 2usize)?,
            uplink_width: args.get_or("uplink", 1usize)?,
            locality: args.get_or("locality", 0.6f64)?,
        },
        rate: args.get_or("rate", 0.5f64)?,
        cycles,
        warmup: args.get_or("warmup", cycles / 10)?,
        seed: args.get_or("seed", 42u64)?,
        failed: match args.get("failed") {
            Some(raw) => parse_list(raw, "failed")?,
            None => Vec::new(),
        },
    })
}

/// Fails every listed link from cycle 0, matching the analytic model's
/// whole-run `failed_links` semantics.
fn schedule_from(failed: &[usize]) -> Result<FaultSchedule, String> {
    FaultSchedule::from_events(
        failed
            .iter()
            .map(|&link| FaultEvent {
                cycle: 0,
                bus: link,
                kind: FaultEventKind::Fail,
            })
            .collect(),
    )
    .map_err(|e| e.to_string())
}

fn sim_config(request: &FabricRequest) -> Result<SimConfig, String> {
    Ok(SimConfig::new(request.cycles)
        .with_warmup(request.warmup)
        .with_seed(request.seed)
        .with_faults(schedule_from(&request.failed)?))
}

fn link_label(kind: LinkKind) -> String {
    match kind {
        LinkKind::Local { leaf } => format!("local({leaf})"),
        LinkKind::Uplink { level, node } => format!("uplink(L{level}.{node})"),
    }
}

/// `mbus fabric` / `mbus fabric --sweep` / `mbus fabric --campaign`.
pub fn fabric(args: &Args) -> Result<(), String> {
    // `--sweep` and `--campaign` are bare flags; a stray value (e.g.
    // `--sweep locality`) would otherwise parse as a non-"true" option
    // and silently fall through to a single run.
    for mode in ["sweep", "campaign"] {
        if let Some(value) = args.get(mode) {
            if value != "true" {
                return Err(format!(
                    "--{mode} takes no value (got '{value}'); the sweep grids \
                     depth x locality from --n/--max-depth/--localities"
                ));
            }
        }
    }
    if args.flag("sweep") {
        return sweep(args);
    }
    if args.flag("campaign") {
        return campaign(args);
    }
    let request = request_from(args)?;
    let (topo, matrix) = request.spec.build().map_err(|e| e.to_string())?;
    let analysis =
        analyze_fabric(&topo, &matrix, request.rate, &request.failed).map_err(|e| e.to_string())?;
    let report = if request.cycles > 0 {
        let mut sim =
            FabricSimulator::build(&topo, &matrix, request.rate).map_err(|e| e.to_string())?;
        let config = sim_config(&request)?;
        Some(match args.get("trace") {
            Some(path) => {
                let file = std::fs::File::create(path)
                    .map_err(|e| format!("cannot create trace file '{path}': {e}"))?;
                let (report, file) = sim
                    .run_traced(&config, std::io::BufWriter::new(file))
                    .map_err(|e| e.to_string())?;
                file.into_inner()
                    .map_err(|e| format!("flushing trace file: {e}"))?
                    .sync_all()
                    .map_err(|e| e.to_string())?;
                report
            }
            None => sim.run(&config).map_err(|e| e.to_string())?,
        })
    } else {
        None
    };
    if args.flag("json") {
        print!(
            "{}",
            render_json(&request, &topo, &analysis, report.as_ref())
        );
    } else {
        print!(
            "{}",
            render_markdown(&request, &topo, &analysis, report.as_ref())
        );
    }
    Ok(())
}

fn shape_string(ks: &[usize]) -> String {
    ks.iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join("x")
}

fn render_markdown(
    request: &FabricRequest,
    topo: &mbus_core::fabric::ClusteredBuses,
    analysis: &FabricAnalysis,
    report: Option<&FabricReport>,
) -> String {
    let mut out = String::new();
    let links = topo.links();
    let uplinks = links
        .iter()
        .filter(|link| matches!(link.kind, LinkKind::Uplink { .. }))
        .count();
    let _ = writeln!(out, "# Fabric evaluation\n");
    let _ = writeln!(
        out,
        "shape {} (N = M = {}), {} leaves, {} local buses/leaf, uplink width {}, \
         locality {:.2}, rate {:.3}",
        shape_string(&request.spec.ks),
        topo.processors(),
        topo.leaves(),
        topo.local_buses(),
        topo.uplink_width(),
        request.spec.locality,
        request.rate,
    );
    let failed: Vec<String> = request.failed.iter().map(usize::to_string).collect();
    let _ = writeln!(
        out,
        "links: {} ({} local + {} uplink), failed: {{{}}}\n",
        links.len(),
        topo.leaves(),
        uplinks,
        failed.join(","),
    );
    let _ = writeln!(out, "## Analytic decomposition\n");
    let _ = writeln!(out, "| metric | value |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| bandwidth (req/cycle) | {:.4} |", analysis.bandwidth);
    let _ = writeln!(out, "| offered load | {:.4} |", analysis.offered_load);
    let _ = writeln!(out, "| acceptance probability | {:.4} |", analysis.acceptance);
    let _ = writeln!(out, "| unreachable rate | {:.4} |", analysis.unreachable_rate);
    let _ = writeln!(out, "| mean hops per delivery | {:.3} |", analysis.mean_hops);
    let _ = writeln!(out, "| fixed-point iterations | {} |", analysis.iterations);
    let _ = writeln!(out, "\n| link | offered | carried | acceptance | utilization |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for (id, load) in analysis.links.iter().enumerate() {
        let _ = writeln!(
            out,
            "| {} | {:.4} | {:.4} | {:.4} | {:.4} |",
            link_label(links[id].kind),
            load.offered,
            load.carried,
            load.acceptance,
            load.utilization,
        );
    }
    let clusters: Vec<String> = analysis
        .cluster_bandwidth
        .iter()
        .map(|bw| format!("{bw:.4}"))
        .collect();
    let _ = writeln!(out, "\nper-cluster bandwidth: [{}]", clusters.join(", "));
    if let Some(report) = report {
        let _ = writeln!(
            out,
            "\n## Simulation ({} cycles, warmup {}, seed {})\n",
            report.cycles, report.warmup, request.seed
        );
        let _ = writeln!(out, "| metric | analytic | simulated | gap |");
        let _ = writeln!(out, "|---|---|---|---|");
        let sim_bw = report.bandwidth.mean();
        let _ = writeln!(
            out,
            "| bandwidth | {:.4} | {:.4} ± {:.4} | {:+.4} |",
            analysis.bandwidth,
            sim_bw,
            report.bandwidth.half_width(),
            analysis.bandwidth - sim_bw,
        );
        let _ = writeln!(
            out,
            "| acceptance | {:.4} | {:.4} | {:+.4} |",
            analysis.acceptance,
            report.acceptance,
            analysis.acceptance - report.acceptance,
        );
        let _ = writeln!(
            out,
            "| mean hops | {:.3} | {:.3} | {:+.3} |",
            analysis.mean_hops,
            report.mean_hops,
            analysis.mean_hops - report.mean_hops,
        );
        if !report.link_utilization.is_empty() {
            let _ = writeln!(out, "\n| link | util (sim) | util (analytic) | carried | blocked | alive cycles |");
            let _ = writeln!(out, "|---|---|---|---|---|---|");
            for (id, link) in links.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "| {} | {:.4} | {:.4} | {} | {} | {} |",
                    link_label(link.kind),
                    report.link_utilization[id],
                    analysis.links[id].utilization,
                    report.link_carried[id],
                    report.link_blocked[id],
                    report.link_alive_cycles[id],
                );
            }
        }
    }
    out
}

fn render_json(
    request: &FabricRequest,
    topo: &mbus_core::fabric::ClusteredBuses,
    analysis: &FabricAnalysis,
    report: Option<&FabricReport>,
) -> String {
    let mut out = String::new();
    let ks: Vec<String> = request.spec.ks.iter().map(usize::to_string).collect();
    let failed: Vec<String> = request.failed.iter().map(usize::to_string).collect();
    let _ = writeln!(out, "{{");
    let _ = writeln!(
        out,
        "  \"spec\": {{\"ks\": [{}], \"local_buses\": {}, \"uplink_width\": {}, \
         \"locality\": {}, \"rate\": {}, \"processors\": {}, \"links\": {}, \
         \"failed_links\": [{}]}},",
        ks.join(", "),
        request.spec.local_buses,
        request.spec.uplink_width,
        request.spec.locality,
        request.rate,
        topo.processors(),
        topo.links().len(),
        failed.join(", "),
    );
    let _ = writeln!(out, "  \"analytic\": {{");
    let _ = writeln!(out, "    \"bandwidth\": {:.6},", analysis.bandwidth);
    let _ = writeln!(out, "    \"offered_load\": {:.6},", analysis.offered_load);
    let _ = writeln!(out, "    \"acceptance\": {:.6},", analysis.acceptance);
    let _ = writeln!(
        out,
        "    \"unreachable_rate\": {:.6},",
        analysis.unreachable_rate
    );
    let _ = writeln!(out, "    \"mean_hops\": {:.6},", analysis.mean_hops);
    let _ = writeln!(out, "    \"iterations\": {},", analysis.iterations);
    let link_utils: Vec<String> = analysis
        .links
        .iter()
        .map(|load| format!("{:.6}", load.utilization))
        .collect();
    let _ = writeln!(
        out,
        "    \"link_utilization\": [{}]",
        link_utils.join(", ")
    );
    let _ = write!(out, "  }}");
    if let Some(report) = report {
        let _ = writeln!(out, ",");
        let _ = writeln!(out, "  \"simulated\": {{");
        let _ = writeln!(out, "    \"cycles\": {},", report.cycles);
        let _ = writeln!(out, "    \"seed\": {},", request.seed);
        let _ = writeln!(out, "    \"bandwidth\": {:.6},", report.bandwidth.mean());
        let _ = writeln!(
            out,
            "    \"bandwidth_half_width\": {:.6},",
            report.bandwidth.half_width()
        );
        let _ = writeln!(out, "    \"acceptance\": {:.6},", report.acceptance);
        let _ = writeln!(out, "    \"mean_hops\": {:.6},", report.mean_hops);
        let utils: Vec<String> = report
            .link_utilization
            .iter()
            .map(|u| format!("{u:.6}"))
            .collect();
        let _ = writeln!(out, "    \"link_utilization\": [{}],", utils.join(", "));
        let _ = writeln!(
            out,
            "    \"analytic_gap\": {:.6}",
            analysis.bandwidth - report.bandwidth.mean()
        );
        let _ = writeln!(out, "  }}");
    } else {
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "}}");
    out
}

/// `mbus fabric --campaign`: degraded-mode uplink-failure sweep — analytic
/// bandwidth over every (or a sample of every) f-uplink failure combo,
/// availability-weighted expectation, and the per-cluster decay table.
fn campaign(args: &Args) -> Result<(), String> {
    let request = request_from(args)?;
    if !request.failed.is_empty() {
        return Err("--failed conflicts with --campaign (the campaign sweeps failures)".into());
    }
    let (topo, matrix) = request.spec.build().map_err(|e| e.to_string())?;
    let config = mbus_core::campaign::CampaignConfig {
        max_failures: match args.get("max-failures") {
            Some(raw) => Some(
                raw.parse()
                    .map_err(|_| format!("--max-failures: cannot parse '{raw}'"))?,
            ),
            None => None,
        },
        exhaustive_limit: args.get_or("limit", 5_000u128)?,
        samples: args.get_or("samples", 512usize)?,
        seed: request.seed,
        bus_failure_prob: args.get_or("q", 0.05f64)?,
        ..mbus_core::campaign::CampaignConfig::default()
    };
    let report = mbus_core::campaign::run_fabric_campaign(&topo, &matrix, request.rate, &config)
        .map_err(|e| e.to_string())?;
    if args.flag("json") {
        print!("{}", mbus_core::campaign::render_fabric_json(&report));
    } else {
        print!("{}", mbus_core::campaign::render_fabric_markdown(&report));
    }
    Ok(())
}

/// Splits `n` into `parts` factors, each at least 2, as balanced as the
/// divisor structure of `n` allows (used to derive the sweep's deeper
/// shapes from `--n`). Returns `None` when no such factorization exists.
fn balanced_factors(n: usize, parts: usize) -> Option<Vec<usize>> {
    if parts == 1 {
        return (n >= 2).then(|| vec![n]);
    }
    let target = (n as f64).powf(1.0 / parts as f64).round() as usize;
    let mut candidates: Vec<usize> = (2..=n).filter(|d| n % d == 0).collect();
    // Ties around the target break toward the larger divisor so shapes
    // come out non-increasing ([4, 2, 2], not [2, 2, 4]), matching the
    // branching-vector convention used everywhere else.
    candidates.sort_by_key(|&d| (d.abs_diff(target), std::cmp::Reverse(d)));
    for head in candidates {
        if let Some(mut rest) = balanced_factors(n / head, parts - 1) {
            let mut shape = vec![head];
            shape.append(&mut rest);
            return Some(shape);
        }
    }
    None
}

/// `mbus fabric --sweep`: analytic-vs-simulated bandwidth over a grid of
/// tree depths (derived from `--n`) and locality values.
fn sweep(args: &Args) -> Result<(), String> {
    let n = args.get_or("n", 16usize)?;
    let rate = args.get_or("rate", 0.5f64)?;
    let cycles = args.get_or("cycles", 10_000u64)?;
    let seed = args.get_or("seed", 42u64)?;
    let local_buses = args.get_or("buses", 2usize)?;
    let uplink_width = args.get_or("uplink", 1usize)?;
    let localities: Vec<f64> = match args.get("localities") {
        Some(raw) => parse_list(raw, "localities")?,
        None => vec![0.9, 0.6, 0.3, 0.0],
    };
    let max_depth = args.get_or("max-depth", 3usize)?;
    let shapes: Vec<Vec<usize>> = (1..=max_depth)
        .filter_map(|depth| balanced_factors(n, depth))
        .collect();
    if shapes.is_empty() {
        return Err(format!("--n {n}: no factorization into clusters"));
    }
    let json = args.flag("json");
    if json {
        println!("[");
    } else {
        println!("| shape | locality | analytic | simulated | ±CI | gap | mean hops |");
        println!("|---|---|---|---|---|---|---|");
    }
    let points = shapes.len() * localities.len();
    let mut emitted = 0usize;
    for shape in &shapes {
        for &locality in &localities {
            let spec = FabricSpec {
                ks: shape.clone(),
                local_buses,
                uplink_width,
                locality,
            };
            let (topo, matrix) = spec.build().map_err(|e| e.to_string())?;
            let analysis = analyze_fabric(&topo, &matrix, rate, &[]).map_err(|e| e.to_string())?;
            let mut sim = FabricSimulator::build(&topo, &matrix, rate).map_err(|e| e.to_string())?;
            let config = SimConfig::new(cycles)
                .with_warmup(cycles / 10)
                .with_seed(seed);
            let report = sim.run(&config).map_err(|e| e.to_string())?;
            let sim_bw = report.bandwidth.mean();
            emitted += 1;
            if json {
                println!(
                    "  {{\"shape\": \"{}\", \"locality\": {:.2}, \"analytic\": {:.6}, \
                     \"simulated\": {:.6}, \"half_width\": {:.6}, \"gap\": {:.6}, \
                     \"mean_hops\": {:.6}}}{}",
                    shape_string(shape),
                    locality,
                    analysis.bandwidth,
                    sim_bw,
                    report.bandwidth.half_width(),
                    analysis.bandwidth - sim_bw,
                    report.mean_hops,
                    if emitted == points { "" } else { "," },
                );
            } else {
                println!(
                    "| {} | {:.2} | {:.4} | {:.4} | {:.4} | {:+.4} | {:.3} |",
                    shape_string(shape),
                    locality,
                    analysis.bandwidth,
                    sim_bw,
                    report.bandwidth.half_width(),
                    analysis.bandwidth - sim_bw,
                    report.mean_hops,
                );
            }
        }
    }
    if json {
        println!("]");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_factors_cover_the_depths() {
        assert_eq!(balanced_factors(16, 1), Some(vec![16]));
        assert_eq!(balanced_factors(16, 2), Some(vec![4, 4]));
        assert_eq!(balanced_factors(16, 3), Some(vec![4, 2, 2]));
        assert_eq!(balanced_factors(64, 3), Some(vec![4, 4, 4]));
        assert_eq!(balanced_factors(7, 2), None);
        assert_eq!(balanced_factors(1, 1), None);
    }

    #[test]
    fn parse_list_handles_spaces_and_rejects_garbage() {
        assert_eq!(parse_list::<usize>("4, 2,2", "ks").unwrap(), vec![4, 2, 2]);
        assert!(parse_list::<usize>("4,x", "ks").is_err());
    }
}
