//! `mbus serve` and `mbus loadgen` — the serving layer's CLI face.
//!
//! `serve` binds the [`mbus_server::Server`] on a TCP address and runs it
//! until SIGTERM/SIGINT (graceful drain: accepted connections finish, the
//! cache and metrics are reported on the way out). `loadgen` drives a
//! running server with the deterministic mixed-endpoint grid from
//! [`mbus_server::loadgen`] and writes `BENCH_server.json`, the serving
//! counterpart of `mbus bench`'s `BENCH_sim.json`.

use crate::args::Args;
use mbus_server::server::{Server, ServerConfig};
use mbus_server::service::ServiceLimits;
use mbus_core::stats::parallel::available_workers;
use mbus_server::{loadgen, signal};

/// `mbus serve`.
pub fn serve(args: &Args) -> Result<(), String> {
    let config = ServerConfig {
        addr: args.get_or("addr", "127.0.0.1:7700".to_owned())?,
        workers: args.get_or("workers", available_workers())?,
        cache_capacity: args.get_or("cache-cap", 256usize)?,
        queue_capacity: args.get_or("queue-cap", 64usize)?,
        service_limits: ServiceLimits {
            max_cycles: args.get_or("max-cycles", ServiceLimits::default().max_cycles)?,
            ..ServiceLimits::default()
        },
        ..ServerConfig::default()
    };
    if config.workers == 0 {
        return Err("--workers must be at least 1".to_owned());
    }

    let server = Server::bind(config.clone()).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("cannot resolve local address: {e}"))?;
    let handle = server.handle();

    println!(
        "mbus serve: listening on {addr} ({} workers, queue {}, cache {} entries)",
        config.workers, config.queue_capacity, config.cache_capacity
    );
    println!("endpoints: POST /v1/{{bandwidth,exact,simulate,degraded,fabric}}, GET /metrics");
    if signal::install() {
        println!("stop with SIGTERM or ctrl-c (graceful drain)");
    } else {
        println!("note: no signal handler on this platform; stop by killing the process");
    }

    server
        .run_until(signal::requested)
        .map_err(|e| format!("server failed: {e}"))?;

    let stats = handle.cache_stats();
    println!(
        "mbus serve: drained and stopped — {} responses ({} shed, {} 5xx), cache {:.1}% hit rate ({} entries)",
        handle.responses(),
        handle.shed(),
        handle.server_errors(),
        stats.hit_rate() * 100.0,
        stats.len
    );
    Ok(())
}

/// `mbus loadgen`.
pub fn loadgen_cmd(args: &Args) -> Result<(), String> {
    let config = loadgen::LoadgenConfig {
        addr: args.get_or("addr", "127.0.0.1:7700".to_owned())?,
        concurrency: args.get_or("concurrency", 4usize)?,
        requests: args.get_or("requests", 256usize)?,
        passes: args.get_or("passes", 2usize)?,
    };
    let out = args.get_or("out", "BENCH_server.json".to_owned())?;

    println!(
        "loadgen: {} requests x {} passes at concurrency {} against {}",
        config.requests, config.passes, config.concurrency, config.addr
    );
    let report = loadgen::run(&config)?;

    for (i, pass) in report.passes.iter().enumerate() {
        let label = if i == 0 { "cold" } else { "warm" };
        println!(
            "  pass {i} ({label}): {:>8.1} req/sec, {:>4} ok / {:>3} shed / {:>3} err / {:>3} transport, \
             {:>4} cache hits, mean {:>8.0} us, p95 {:>8} us",
            pass.throughput(),
            pass.ok,
            pass.shed,
            pass.errors,
            pass.transport_errors,
            pass.cache_hits,
            pass.latency_us.mean(),
            pass.latency_us
                .quantile(0.95)
                .map(|q| q.to_string())
                .unwrap_or_else(|| "-".to_owned()),
        );
    }
    match report.cache_speedup() {
        Some(speedup) => println!("  cache-hit speedup: {speedup:.2}x (cold/warm mean latency)"),
        None => println!("  cache-hit speedup: not measurable (need two passes with answered requests)"),
    }
    if report.hard_failures() > 0 {
        println!(
            "  WARNING: {} hard failures (non-shed errors + transport)",
            report.hard_failures()
        );
    }

    std::fs::write(&out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");

    if report.passes.iter().all(|p| p.ok == 0) {
        return Err(format!(
            "no request succeeded — is a server running at {}? (start one with 'mbus serve')",
            config.addr
        ));
    }
    Ok(())
}
