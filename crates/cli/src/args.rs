//! A small, dependency-free argument parser for the `mbus` binary.

use std::collections::BTreeMap;

/// Parsed command line: one subcommand, positional arguments, and
/// `--key value` / `--flag` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options and bare `--flag`s (mapped to `"true"`).
    pub options: BTreeMap<String, String>,
}

impl Args {
    /// Parses an argument list (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut parsed = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        iter.next().unwrap_or_else(|| "true".to_owned())
                    }
                    _ => "true".to_owned(),
                };
                parsed.options.insert(key.to_owned(), value);
            } else if parsed.command.is_empty() {
                parsed.command = arg;
            } else {
                parsed.positional.push(arg);
            }
        }
        parsed
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{raw}'")),
        }
    }

    /// Whether a bare flag (or `--key true`) is present.
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_positional_and_options() {
        let args = parse("table 2 --csv --n 16 --rate 0.5");
        assert_eq!(args.command, "table");
        assert_eq!(args.positional, vec!["2"]);
        assert!(args.flag("csv"));
        assert_eq!(args.get_or("n", 8usize).unwrap(), 16);
        assert_eq!(args.get_or("rate", 1.0f64).unwrap(), 0.5);
    }

    #[test]
    fn defaults_apply() {
        let args = parse("analyze");
        assert_eq!(args.get_or("n", 8usize).unwrap(), 8);
        assert!(!args.flag("csv"));
    }

    #[test]
    fn bad_values_error() {
        let args = parse("analyze --n banana");
        assert!(args.get_or("n", 8usize).is_err());
    }

    #[test]
    fn flag_followed_by_flag() {
        let args = parse("simulate --resubmission --cycles 100");
        assert!(args.flag("resubmission"));
        assert_eq!(args.get_or("cycles", 0u64).unwrap(), 100);
    }
}
