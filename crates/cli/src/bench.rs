//! `mbus bench` — the workspace throughput harness.
//!
//! Five measurements, reported to stdout and written as JSON:
//!
//! 1. **Engine throughput**: simulated cycles/sec of the optimized
//!    [`Simulator`] against the frozen pre-optimization
//!    [`ReferenceSimulator`], on the 32×32×8 full-connection network under
//!    hierarchical traffic with resubmission — the configuration the
//!    zero-allocation work targets. Both engines must produce the *same*
//!    report (they share RNG draw order), so the harness doubles as an
//!    end-to-end equivalence check.
//! 2. **Sweep throughput**: analytical sweep points/sec of
//!    [`bus_sweep_with_workers`] serial (1 worker) vs parallel (all cores)
//!    on a 64-point full-connection sweep at N = 64. On a single-core
//!    machine the parallel run would just repeat the serial measurement, so
//!    it is skipped and no speedup is reported.
//! 3. **Replication scaling** (`--scaling` runs only this section):
//!    replications/sec of the batched SoA lane engine against the scalar
//!    engine on a single worker — the per-replication amortization the
//!    batching work targets — plus the batched engine's throughput at
//!    1, 2, 4, … workers (the work-stealing pool's scaling curve; one
//!    point on a single-core machine). The two engines follow different
//!    sampling specs, so the gate is statistical agreement of the mean
//!    bandwidth, plus bit-exact determinism of the batched reports
//!    across worker counts.
//! 4. **Fabric** (`--fabric` runs only this section): routed fabric
//!    simulator cycles/sec at tree depths 2 and 3 against the flat engine
//!    on each fabric's flattened equivalent network, with the analytic
//!    decomposition's bandwidth gap per depth; plus batched replications
//!    under full vs aggregate-only collection (`CollectMode`) — the cost
//!    of per-grant accounting when only scalar summaries are wanted.
//! 5. **Exact engines** (`--exact` runs only this section): the
//!    subset-transform requested-set pmf against the retained
//!    per-processor DP on a 256×16 hierarchical workload (identical
//!    results, `O(G·2^M + 2^M·M)` vs `O(N·2^M·M)` work), and the lumped
//!    Markov chain solving a 16×8×4 resubmission model the unlumped chain
//!    rejects as too large.
//!
//! Timings take the best of `--reps` repetitions, with the two sides of each
//! comparison interleaved rep by rep so background load on a shared machine
//! penalizes both alike rather than whichever happened to run second.

use crate::args::Args;
use mbus_core::analysis::sweep::bus_sweep_with_workers;
use mbus_core::exact;
use mbus_core::prelude::*;
use mbus_core::sim::reference::ReferenceSimulator;
use mbus_core::sim::runner::{
    run_replications_scalar_with_workers, run_replications_with_workers,
};
use mbus_core::stats::parallel::available_workers;
use std::time::Instant;

/// Best-of-`reps` wall times of `a` and `b`, interleaved (a, b, a, b, …) so
/// background load on a shared machine hits both measurements alike instead
/// of skewing whichever ran second.
fn best_seconds_interleaved<A: FnMut(), B: FnMut()>(reps: usize, mut a: A, mut b: B) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        a();
        best_a = best_a.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        b();
        best_b = best_b.min(start.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

/// Best-of-`reps` wall time of a single measurement.
fn best_seconds<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct EngineResult {
    total_cycles: u64,
    optimized_cps: f64,
    reference_cps: f64,
}

/// Times the optimized engine against the frozen reference engine.
fn engine_benchmark(
    n: usize,
    b: usize,
    cycles: u64,
    seed: u64,
    reps: usize,
) -> Result<EngineResult, String> {
    let net = BusNetwork::new(n, n, b, ConnectionScheme::Full).map_err(|e| e.to_string())?;
    let matrix = paper_params::hierarchical(n)
        .map_err(|e| e.to_string())?
        .matrix();
    let config = SimConfig::new(cycles)
        .with_warmup(cycles / 20)
        .with_seed(seed)
        .with_resubmission(true);
    let total_cycles = cycles + cycles / 20;

    let mut optimized = Simulator::build(&net, &matrix, 1.0).map_err(|e| e.to_string())?;
    let mut reference = ReferenceSimulator::build(&net, &matrix, 1.0).map_err(|e| e.to_string())?;

    // The engines must agree exactly before their speeds are worth
    // comparing; `run` reseeds from the config, so this does not perturb
    // the timed runs below.
    let opt_report = optimized.run(&config).map_err(|e| e.to_string())?;
    let ref_report = reference.run(&config).map_err(|e| e.to_string())?;
    if opt_report != ref_report {
        return Err("optimized and reference engines diverged — benchmark void".into());
    }

    let (opt_secs, ref_secs) = best_seconds_interleaved(
        reps,
        || {
            // lint:allow(no_panic, the same run succeeded in the divergence check above; timing closures must stay Result-free)
            optimized.run(&config).expect("checked above");
        },
        || {
            // lint:allow(no_panic, the same run succeeded in the divergence check above; timing closures must stay Result-free)
            reference.run(&config).expect("checked above");
        },
    );
    Ok(EngineResult {
        total_cycles,
        optimized_cps: total_cycles as f64 / opt_secs,
        reference_cps: total_cycles as f64 / ref_secs,
    })
}

struct SweepResult {
    points: usize,
    /// Worker threads detected via `std::thread::available_parallelism`
    /// (reported even when the parallel measurement is skipped).
    workers: usize,
    serial_pps: f64,
    /// `None` on a single-core machine: a "parallel" run with one worker
    /// is the serial run again, and its ≈1.0x "speedup" is pure noise, so
    /// the measurement is skipped rather than reported.
    parallel_pps: Option<f64>,
}

/// Times a full-connection analytical bus sweep serially and — when more
/// than one worker is available — in parallel.
fn sweep_benchmark(n: usize, reps: usize) -> Result<SweepResult, String> {
    let matrix = paper_params::hierarchical(n)
        .map_err(|e| e.to_string())?
        .matrix();
    let bus_counts: Vec<usize> = (1..=n).collect();
    let factory = |_| Ok(ConnectionScheme::Full);
    let workers = available_workers();

    let serial = bus_sweep_with_workers(n, n, &bus_counts, &factory, &matrix, 1.0, 1)
        .map_err(|e| e.to_string())?;

    if workers <= 1 {
        let serial_secs = best_seconds(reps, || {
            // lint:allow(no_panic, the same sweep succeeded above; timing closures must stay Result-free)
            bus_sweep_with_workers(n, n, &bus_counts, &factory, &matrix, 1.0, 1).unwrap();
        });
        return Ok(SweepResult {
            points: bus_counts.len(),
            workers,
            serial_pps: bus_counts.len() as f64 / serial_secs,
            parallel_pps: None,
        });
    }

    let parallel = bus_sweep_with_workers(n, n, &bus_counts, &factory, &matrix, 1.0, workers)
        .map_err(|e| e.to_string())?;
    if serial != parallel {
        return Err("serial and parallel sweeps diverged — benchmark void".into());
    }

    let (serial_secs, parallel_secs) = best_seconds_interleaved(
        reps,
        || {
            // lint:allow(no_panic, the same sweep succeeded in the divergence check above; timing closures must stay Result-free)
            bus_sweep_with_workers(n, n, &bus_counts, &factory, &matrix, 1.0, 1).unwrap();
        },
        || {
            // lint:allow(no_panic, the same sweep succeeded in the divergence check above; timing closures must stay Result-free)
            bus_sweep_with_workers(n, n, &bus_counts, &factory, &matrix, 1.0, workers).unwrap();
        },
    );
    Ok(SweepResult {
        points: bus_counts.len(),
        workers,
        serial_pps: bus_counts.len() as f64 / serial_secs,
        parallel_pps: Some(bus_counts.len() as f64 / parallel_secs),
    })
}

struct ScalingResult {
    replications: usize,
    /// Cycles per replication (including warmup).
    total_cycles: u64,
    /// Scalar engine, one worker.
    scalar_rps: f64,
    /// Batched SoA engine, one worker.
    batched_rps: f64,
    /// Batched replications/sec at each measured worker count,
    /// ascending; the first entry is always `(1, batched_rps)`.
    curve: Vec<(usize, f64)>,
}

impl ScalingResult {
    /// Single-worker batched-over-scalar speedup — the headline number.
    fn speedup(&self) -> f64 {
        self.batched_rps / self.scalar_rps
    }
}

/// Times replicated runs on the batched SoA engine against the scalar
/// engine (one worker each), then walks the batched engine up the worker
/// counts. Worker counts double from 1 and always include the detected
/// maximum.
fn scaling_benchmark(
    n: usize,
    b: usize,
    cycles: u64,
    seed: u64,
    replications: usize,
    reps: usize,
) -> Result<ScalingResult, String> {
    let net = BusNetwork::new(n, n, b, ConnectionScheme::Full).map_err(|e| e.to_string())?;
    let matrix = paper_params::hierarchical(n)
        .map_err(|e| e.to_string())?
        .matrix();
    let config = SimConfig::new(cycles).with_warmup(cycles / 20).with_seed(seed);
    let total_cycles = cycles + cycles / 20;

    // Gates before timing: the engines follow different sampling specs,
    // so the cross-check is statistical (mean bandwidth) rather than
    // bit-exact; batched reports, however, must be deterministic across
    // worker counts.
    let batched = run_replications_with_workers(&net, &matrix, 1.0, &config, replications, 1)
        .map_err(|e| e.to_string())?;
    let scalar =
        run_replications_scalar_with_workers(&net, &matrix, 1.0, &config, replications, 1)
            .map_err(|e| e.to_string())?;
    if batched.engine != "batched" || scalar.engine != "scalar" {
        return Err("engine selection gate failed — benchmark void".into());
    }
    if (batched.bandwidth.mean() - scalar.bandwidth.mean()).abs() > 0.05 {
        return Err(format!(
            "batched ({}) and scalar ({}) means diverged — benchmark void",
            batched.bandwidth.mean(),
            scalar.bandwidth.mean()
        ));
    }

    let (batched_secs, scalar_secs) = best_seconds_interleaved(
        reps,
        || {
            run_replications_with_workers(&net, &matrix, 1.0, &config, replications, 1)
                // lint:allow(no_panic, the same run succeeded in the agreement gate above; timing closures must stay Result-free)
                .expect("checked above");
        },
        || {
            run_replications_scalar_with_workers(&net, &matrix, 1.0, &config, replications, 1)
                // lint:allow(no_panic, the same run succeeded in the agreement gate above; timing closures must stay Result-free)
                .expect("checked above");
        },
    );
    let batched_rps = replications as f64 / batched_secs;

    let mut curve = vec![(1usize, batched_rps)];
    let max_workers = available_workers();
    let mut counts: Vec<usize> = std::iter::successors(Some(2usize), |w| Some(w * 2))
        .take_while(|&w| w < max_workers)
        .collect();
    if max_workers > 1 {
        counts.push(max_workers);
    }
    for workers in counts {
        let wide =
            run_replications_with_workers(&net, &matrix, 1.0, &config, replications, workers)
                .map_err(|e| e.to_string())?;
        if wide.reports != batched.reports {
            return Err(format!(
                "batched reports changed at {workers} workers — benchmark void"
            ));
        }
        let secs = best_seconds(reps, || {
            run_replications_with_workers(&net, &matrix, 1.0, &config, replications, workers)
                // lint:allow(no_panic, the same run succeeded in the determinism gate above; timing closures must stay Result-free)
                .expect("checked above");
        });
        curve.push((workers, replications as f64 / secs));
    }

    Ok(ScalingResult {
        replications,
        total_cycles,
        scalar_rps: replications as f64 / scalar_secs,
        batched_rps,
        curve,
    })
}

struct FabricBenchEntry {
    shape: String,
    links: usize,
    /// Cycles per run (including warmup).
    total_cycles: u64,
    /// Routed fabric simulator, cycles/sec.
    fabric_cps: f64,
    /// Flat [`Simulator`] on the flattened equivalent network, cycles/sec.
    flat_cps: f64,
    /// Analytic decomposition bandwidth.
    analytic_bw: f64,
    /// Simulated mean bandwidth.
    sim_bw: f64,
}

impl FabricBenchEntry {
    /// `|analytic − sim| / sim`: the cross-validation gap.
    fn rel_gap(&self) -> f64 {
        if self.sim_bw == 0.0 {
            0.0
        } else {
            (self.analytic_bw - self.sim_bw).abs() / self.sim_bw
        }
    }
}

/// Times the routed fabric simulator at depths 2 and 3 against the flat
/// engine on each fabric's flattened equivalent network (same processors,
/// same workload, all local buses pooled), and records the analytic
/// decomposition's bandwidth gap at each depth.
fn fabric_benchmark(
    cycles: u64,
    seed: u64,
    reps: usize,
) -> Result<Vec<FabricBenchEntry>, String> {
    use mbus_core::fabric::{analyze_fabric, FabricSimulator, FabricSpec, FabricTopology};
    const RATE: f64 = 0.5;
    const LOCALITY: f64 = 0.6;
    let mut entries = Vec::new();
    for ks in [vec![4usize, 4], vec![4, 2, 2]] {
        let spec = FabricSpec {
            ks: ks.clone(),
            local_buses: 2,
            uplink_width: 1,
            locality: LOCALITY,
        };
        let (topo, matrix) = spec.build().map_err(|e| e.to_string())?;
        let config = SimConfig::new(cycles).with_warmup(cycles / 10).with_seed(seed);
        let total_cycles = cycles + cycles / 10;

        let mut fabric_sim =
            FabricSimulator::build(&topo, &matrix, RATE).map_err(|e| e.to_string())?;
        let report = fabric_sim.run(&config).map_err(|e| e.to_string())?;
        let analysis = analyze_fabric(&topo, &matrix, RATE, &[]).map_err(|e| e.to_string())?;

        let flat_net = topo.flat_equivalent().map_err(|e| e.to_string())?;
        let mut flat = Simulator::build(&flat_net, &matrix, RATE).map_err(|e| e.to_string())?;
        flat.run(&config).map_err(|e| e.to_string())?;

        let (fabric_secs, flat_secs) = best_seconds_interleaved(
            reps,
            || {
                // lint:allow(no_panic, the same run succeeded in the setup pass above; timing closures must stay Result-free)
                fabric_sim.run(&config).expect("checked above");
            },
            || {
                // lint:allow(no_panic, the same run succeeded in the setup pass above; timing closures must stay Result-free)
                flat.run(&config).expect("checked above");
            },
        );
        entries.push(FabricBenchEntry {
            shape: ks
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join("x"),
            links: topo.links().len(),
            total_cycles,
            fabric_cps: total_cycles as f64 / fabric_secs,
            flat_cps: total_cycles as f64 / flat_secs,
            analytic_bw: analysis.bandwidth,
            sim_bw: report.bandwidth.mean(),
        });
    }
    Ok(entries)
}

struct CollectResult {
    replications: usize,
    /// Batched engine with full per-unit accounting, replications/sec.
    full_rps: f64,
    /// Batched engine with aggregate-only collection, replications/sec.
    aggregate_rps: f64,
}

/// Times batched replications with full per-unit accounting against
/// aggregate-only collection ([`CollectMode::Aggregate`]) — the residue the
/// per-grant accumulation costs when only the scalar summary is wanted.
fn collect_benchmark(
    n: usize,
    b: usize,
    cycles: u64,
    seed: u64,
    replications: usize,
    reps: usize,
) -> Result<CollectResult, String> {
    use mbus_core::sim::CollectMode;
    let net = BusNetwork::new(n, n, b, ConnectionScheme::Full).map_err(|e| e.to_string())?;
    let matrix = paper_params::hierarchical(n)
        .map_err(|e| e.to_string())?
        .matrix();
    let full_config = SimConfig::new(cycles).with_warmup(cycles / 20).with_seed(seed);
    let agg_config = full_config.clone().with_collect(CollectMode::Aggregate);

    // Gate: aggregate collection must not change any scalar of any report.
    let full = run_replications_with_workers(&net, &matrix, 1.0, &full_config, replications, 1)
        .map_err(|e| e.to_string())?;
    let agg = run_replications_with_workers(&net, &matrix, 1.0, &agg_config, replications, 1)
        .map_err(|e| e.to_string())?;
    if full.bandwidth != agg.bandwidth {
        return Err("aggregate collection changed the bandwidth — benchmark void".into());
    }

    let (full_secs, agg_secs) = best_seconds_interleaved(
        reps,
        || {
            run_replications_with_workers(&net, &matrix, 1.0, &full_config, replications, 1)
                // lint:allow(no_panic, the same run succeeded in the agreement gate above; timing closures must stay Result-free)
                .expect("checked above");
        },
        || {
            run_replications_with_workers(&net, &matrix, 1.0, &agg_config, replications, 1)
                // lint:allow(no_panic, the same run succeeded in the agreement gate above; timing closures must stay Result-free)
                .expect("checked above");
        },
    );
    Ok(CollectResult {
        replications,
        full_rps: replications as f64 / full_secs,
        aggregate_rps: replications as f64 / agg_secs,
    })
}

struct ExactResult {
    n: usize,
    m: usize,
    b: usize,
    groups: usize,
    dp_seconds: f64,
    transform_seconds: f64,
    lumped_n: usize,
    lumped_m: usize,
    lumped_b: usize,
    lumped_states: usize,
    lumped_throughput: f64,
    lumped_seconds: f64,
    unlumped_rejected: bool,
    /// Cross-sweep pmf memo counters at the end of the run.
    pmf_cache: mbus_core::stats::cache::CacheStats,
    /// Served-set lookup-table memo counters at the end of the run.
    served_cache: mbus_core::stats::cache::CacheStats,
}

impl ExactResult {
    fn speedup(&self) -> f64 {
        self.dp_seconds / self.transform_seconds
    }
}

/// Times the subset-transform enumeration against the retained DP, and the
/// lumped Markov chain on a size the unlumped chain rejects.
fn exact_benchmark(reps: usize) -> Result<ExactResult, String> {
    // Transform vs DP: 256 processors over 16 memories, hierarchical
    // workload with 16 clusters of 16 (G = 16 distinct rows), full
    // connection with 8 buses.
    let (n, m, b) = (256usize, 16usize, 8usize);
    let hierarchy = Hierarchy::shared(&[16, 16], 1).map_err(|e| e.to_string())?;
    let model = HierarchicalModel::with_aggregate_shares(hierarchy, &[0.6, 0.4])
        .map_err(|e| e.to_string())?;
    let matrix = model.matrix();
    let groups = matrix.groups().len();
    let net = BusNetwork::new(n, m, b, ConnectionScheme::Full).map_err(|e| e.to_string())?;

    // Both engines must agree exactly before their speeds are compared.
    let dp_bw = exact::enumerate::exact_bandwidth_dp(&net, &matrix, 1.0).map_err(|e| e.to_string())?;
    let tf_bw = exact::transform::transform_bandwidth(&net, &matrix, 1.0).map_err(|e| e.to_string())?;
    if (dp_bw - tf_bw).abs() > 1e-9 {
        return Err(format!(
            "transform ({tf_bw}) and DP ({dp_bw}) engines diverged — benchmark void"
        ));
    }

    // Time the pmf construction (the entire asymptotic difference); the
    // transform side calls the uncached entry point so the cross-sweep
    // cache cannot flatter the measurement.
    let (dp_seconds, transform_seconds) = best_seconds_interleaved(
        reps,
        || {
            // lint:allow(no_panic, the same computation succeeded in the divergence check above; timing closures must stay Result-free)
            exact::enumerate::requested_set_pmf_dp(&matrix, 1.0).expect("checked above");
        },
        || {
            // lint:allow(no_panic, the same computation succeeded in the divergence check above; timing closures must stay Result-free)
            exact::transform::requested_set_pmf(&matrix, 1.0).expect("checked above");
        },
    );

    // Lumped Markov chain: a 16×8×4 uniform resubmission model. The
    // unlumped chain needs (M+1)^N states and must reject it; the lumped
    // chain solves it from occupancy counts.
    let (ln, lm, lb) = (16usize, 8usize, 4usize);
    let lu_net = BusNetwork::new(ln, lm, lb, ConnectionScheme::Full).map_err(|e| e.to_string())?;
    let lu_matrix = UniformModel::new(ln, lm).map_err(|e| e.to_string())?.matrix();
    let unlumped_rejected = matches!(
        exact::markov::resubmission_steady_state(&lu_net, &lu_matrix, 1.0),
        Err(exact::ExactError::TooLarge { .. })
    );
    let steady =
        exact::lumped::lumped_steady_state(&lu_net, &lu_matrix, 1.0).map_err(|e| e.to_string())?;
    let lumped_seconds = best_seconds(reps, || {
        // lint:allow(no_panic, the same chain solved successfully above; timing closures must stay Result-free)
        exact::lumped::lumped_steady_state(&lu_net, &lu_matrix, 1.0).expect("solved above");
    });

    Ok(ExactResult {
        n,
        m,
        b,
        groups,
        dp_seconds,
        transform_seconds,
        lumped_n: ln,
        lumped_m: lm,
        lumped_b: lb,
        lumped_states: steady.states,
        lumped_throughput: steady.throughput,
        lumped_seconds,
        unlumped_rejected,
        pmf_cache: exact::transform::pmf_cache_stats(),
        served_cache: exact::memo::served_table_cache_stats(),
    })
}

/// The `"engine"` JSON section.
fn engine_json(n: usize, b: usize, cycles: u64, seed: u64, engine: &EngineResult) -> String {
    format!(
        "  \"engine\": {{\n    \"n\": {n},\n    \"m\": {n},\n    \"b\": {b},\n    \
         \"scheme\": \"full\",\n    \"workload\": \"hierarchical\",\n    \"rate\": 1.0,\n    \
         \"resubmission\": true,\n    \"cycles\": {cycles},\n    \"seed\": {seed},\n    \
         \"total_cycles_per_run\": {total},\n    \
         \"optimized_cycles_per_sec\": {ocps:.1},\n    \
         \"reference_cycles_per_sec\": {rcps:.1},\n    \
         \"speedup\": {espeed:.3}\n  }}",
        total = engine.total_cycles,
        ocps = engine.optimized_cps,
        rcps = engine.reference_cps,
        espeed = engine.optimized_cps / engine.reference_cps,
    )
}

/// The `"sweep"` JSON section. With one worker the parallel measurement is
/// skipped, so neither `parallel_points_per_sec` nor `speedup` is emitted.
fn sweep_json(sweep_n: usize, sweep: &SweepResult) -> String {
    let parallel = match sweep.parallel_pps {
        Some(ppps) => format!(
            ",\n    \"parallel_points_per_sec\": {ppps:.2},\n    \
             \"speedup\": {sspeed:.3}",
            sspeed = ppps / sweep.serial_pps,
        ),
        None => String::new(),
    };
    format!(
        "  \"sweep\": {{\n    \"n\": {sweep_n},\n    \"points\": {points},\n    \
         \"workers\": {workers},\n    \
         \"serial_points_per_sec\": {spps:.2}{parallel}\n  }}",
        points = sweep.points,
        workers = sweep.workers,
        spps = sweep.serial_pps,
    )
}

/// The `"scaling"` JSON section.
fn scaling_json(n: usize, b: usize, seed: u64, scaling: &ScalingResult) -> String {
    let curve = scaling
        .curve
        .iter()
        .map(|&(workers, rps)| {
            format!(
                "      {{ \"workers\": {workers}, \"replications_per_sec\": {rps:.2} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "  \"scaling\": {{\n    \"n\": {n},\n    \"m\": {n},\n    \"b\": {b},\n    \
         \"scheme\": \"full\",\n    \"workload\": \"hierarchical\",\n    \"rate\": 1.0,\n    \
         \"resubmission\": false,\n    \"seed\": {seed},\n    \
         \"replications\": {reps},\n    \"total_cycles_per_replication\": {total},\n    \
         \"scalar_replications_per_sec\": {srps:.2},\n    \
         \"batched_replications_per_sec\": {brps:.2},\n    \
         \"single_worker_speedup\": {speedup:.3},\n    \
         \"workers\": [\n{curve}\n    ]\n  }}",
        reps = scaling.replications,
        total = scaling.total_cycles,
        srps = scaling.scalar_rps,
        brps = scaling.batched_rps,
        speedup = scaling.speedup(),
    )
}

/// The `"fabric"` JSON section: one entry per tree depth plus the
/// collect-mode comparison.
fn fabric_json(
    cycles: u64,
    seed: u64,
    entries: &[FabricBenchEntry],
    collect: &CollectResult,
) -> String {
    let depths = entries
        .iter()
        .map(|entry| {
            format!(
                "      {{ \"shape\": \"{shape}\", \"links\": {links}, \
                 \"total_cycles_per_run\": {total}, \
                 \"fabric_cycles_per_sec\": {fcps:.1}, \
                 \"flat_cycles_per_sec\": {xcps:.1}, \
                 \"routing_cost\": {cost:.3}, \
                 \"analytic_bandwidth\": {abw:.6}, \
                 \"sim_bandwidth\": {sbw:.6}, \
                 \"rel_gap\": {gap:.6} }}",
                shape = entry.shape,
                links = entry.links,
                total = entry.total_cycles,
                fcps = entry.fabric_cps,
                xcps = entry.flat_cps,
                cost = entry.flat_cps / entry.fabric_cps,
                abw = entry.analytic_bw,
                sbw = entry.sim_bw,
                gap = entry.rel_gap(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "  \"fabric\": {{\n    \"locality\": 0.6,\n    \"rate\": 0.5,\n    \
         \"cycles\": {cycles},\n    \"seed\": {seed},\n    \
         \"depths\": [\n{depths}\n    ],\n    \
         \"collect\": {{ \"replications\": {creps}, \
         \"full_replications_per_sec\": {frps:.2}, \
         \"aggregate_replications_per_sec\": {arps:.2}, \
         \"speedup\": {cspeed:.3} }}\n  }}",
        creps = collect.replications,
        frps = collect.full_rps,
        arps = collect.aggregate_rps,
        cspeed = collect.aggregate_rps / collect.full_rps,
    )
}

/// The `"exact"` JSON section.
fn exact_json(exact: &ExactResult) -> String {
    format!(
        "  \"exact\": {{\n    \"transform\": {{\n      \"n\": {n},\n      \"m\": {m},\n      \
         \"b\": {b},\n      \"workload\": \"hierarchical\",\n      \"groups\": {groups},\n      \
         \"rate\": 1.0,\n      \"dp_seconds\": {dps:.6},\n      \
         \"transform_seconds\": {tfs:.6},\n      \"speedup\": {speedup:.1}\n    }},\n    \
         \"lumped\": {{\n      \"n\": {ln},\n      \"m\": {lm},\n      \"b\": {lb},\n      \
         \"workload\": \"uniform\",\n      \"rate\": 1.0,\n      \"states\": {states},\n      \
         \"throughput\": {tp:.6},\n      \"seconds\": {ls:.6},\n      \
         \"unlumped_rejected\": {rejected}\n    }},\n    \
         \"caches\": {{\n      \"pmf\": {{ \"hits\": {ph}, \"misses\": {pm}, \
         \"inserts\": {pi}, \"entries\": {pl} }},\n      \
         \"served_tables\": {{ \"hits\": {sh}, \"misses\": {sm}, \
         \"inserts\": {si}, \"entries\": {sl} }}\n    }}\n  }}",
        n = exact.n,
        m = exact.m,
        b = exact.b,
        groups = exact.groups,
        dps = exact.dp_seconds,
        tfs = exact.transform_seconds,
        speedup = exact.speedup(),
        ln = exact.lumped_n,
        lm = exact.lumped_m,
        lb = exact.lumped_b,
        states = exact.lumped_states,
        tp = exact.lumped_throughput,
        ls = exact.lumped_seconds,
        rejected = exact.unlumped_rejected,
        ph = exact.pmf_cache.hits,
        pm = exact.pmf_cache.misses,
        pi = exact.pmf_cache.inserts,
        pl = exact.pmf_cache.len,
        sh = exact.served_cache.hits,
        sm = exact.served_cache.misses,
        si = exact.served_cache.inserts,
        sl = exact.served_cache.len,
    )
}

/// Joins the present sections into the top-level JSON object.
fn render_json(sections: &[String]) -> String {
    format!("{{\n{}\n}}\n", sections.join(",\n"))
}

/// `mbus bench`.
pub fn bench(args: &Args) -> Result<(), String> {
    let n = args.get_or("n", 32usize)?;
    let b = args.get_or("b", 8usize)?;
    let cycles = args.get_or("cycles", 200_000u64)?;
    let seed = args.get_or("seed", 42u64)?;
    let reps = args.get_or("reps", 5usize)?;
    let sweep_n = args.get_or("sweep-n", 64usize)?;
    let replications = args.get_or("replications", 64usize)?;
    let scaling_cycles = args.get_or("scaling-cycles", 20_000u64)?;
    let out = args.get_or("out", "BENCH_sim.json".to_owned())?;
    let exact_only = args.flag("exact");
    let scaling_only = args.flag("scaling");
    let fabric_only = args.flag("fabric");

    let mut sections = Vec::new();

    if !exact_only && !scaling_only && !fabric_only {
        println!("engine: {n}x{n}x{b} full, hierarchical, r = 1.0, resubmission, {cycles} cycles");
        let engine = engine_benchmark(n, b, cycles, seed, reps)?;
        println!(
            "  optimized: {:>12.0} cycles/sec\n  reference: {:>12.0} cycles/sec\n  speedup:   {:>12.2}x",
            engine.optimized_cps,
            engine.reference_cps,
            engine.optimized_cps / engine.reference_cps
        );
        sections.push(engine_json(n, b, cycles, seed, &engine));

        println!(
            "\nsweep: {sweep_n} full-connection points at N = {sweep_n}, hierarchical, r = 1.0"
        );
        let sweep = sweep_benchmark(sweep_n, reps)?;
        match sweep.parallel_pps {
            Some(ppps) => println!(
                "  serial:    {:>12.1} points/sec\n  parallel:  {:>12.1} points/sec ({} workers)\n  speedup:   {:>12.2}x",
                sweep.serial_pps,
                ppps,
                sweep.workers,
                ppps / sweep.serial_pps
            ),
            None => println!(
                "  serial:    {:>12.1} points/sec\n  parallel:  skipped (1 worker detected)",
                sweep.serial_pps
            ),
        }
        sections.push(sweep_json(sweep_n, &sweep));
    }

    if fabric_only || (!exact_only && !scaling_only) {
        println!(
            "\nfabric: routed sim vs flat equivalent at depths 2 and 3, \
             locality 0.6, r = 0.5, {scaling_cycles} cycles"
        );
        let entries = fabric_benchmark(scaling_cycles, seed, reps)?;
        for entry in &entries {
            println!(
                "  {:<6} {:>12.0} cycles/sec routed, {:>12.0} flat ({:.2}x routing cost), \
                 analytic {:.4} vs sim {:.4} ({:.1}% gap)",
                entry.shape,
                entry.fabric_cps,
                entry.flat_cps,
                entry.flat_cps / entry.fabric_cps,
                entry.analytic_bw,
                entry.sim_bw,
                100.0 * entry.rel_gap(),
            );
        }
        let collect = collect_benchmark(8, 4, scaling_cycles, seed, replications, reps)?;
        println!(
            "  collect:   {:>12.1} replications/sec full, {:>12.1} aggregate ({:.2}x)",
            collect.full_rps,
            collect.aggregate_rps,
            collect.aggregate_rps / collect.full_rps
        );
        sections.push(fabric_json(scaling_cycles, seed, &entries, &collect));
    }

    if fabric_only {
        let json = render_json(&sections);
        std::fs::write(&out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("\nwrote {out}");
        return Ok(());
    }

    if !exact_only {
        let sn = 8usize;
        let sb = 4usize;
        println!(
            "\nscaling: {replications} replications of {sn}x{sn}x{sb} full, hierarchical, \
             r = 1.0, {scaling_cycles} cycles, batched vs scalar"
        );
        let scaling = scaling_benchmark(sn, sb, scaling_cycles, seed, replications, reps)?;
        println!(
            "  scalar:    {:>12.1} replications/sec (1 worker)\n  \
             batched:   {:>12.1} replications/sec (1 worker)\n  \
             speedup:   {:>12.2}x",
            scaling.scalar_rps,
            scaling.batched_rps,
            scaling.speedup()
        );
        for &(workers, rps) in scaling.curve.iter().skip(1) {
            println!(
                "  batched:   {:>12.1} replications/sec ({workers} workers, {:.2}x vs 1)",
                rps,
                rps / scaling.batched_rps
            );
        }
        sections.push(scaling_json(sn, sb, seed, &scaling));
    }

    if scaling_only {
        let json = render_json(&sections);
        std::fs::write(&out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("\nwrote {out}");
        return Ok(());
    }

    println!("\nexact: transform vs DP on 256x16 hierarchical; lumped Markov on 16x8x4 uniform");
    let exact = exact_benchmark(reps)?;
    println!(
        "  dp:        {:>12.4} sec/pmf\n  transform: {:>12.4} sec/pmf ({} groups)\n  speedup:   {:>12.1}x",
        exact.dp_seconds,
        exact.transform_seconds,
        exact.groups,
        exact.speedup()
    );
    println!(
        "  lumped:    {:>12} states, throughput {:.4}, {:.4} sec (unlumped rejected: {})",
        exact.lumped_states, exact.lumped_throughput, exact.lumped_seconds, exact.unlumped_rejected
    );
    println!(
        "  caches:    pmf {}/{} hits ({:.0}% hit rate, {} entries), served tables {}/{} hits ({} entries)",
        exact.pmf_cache.hits,
        exact.pmf_cache.hits + exact.pmf_cache.misses,
        exact.pmf_cache.hit_rate() * 100.0,
        exact.pmf_cache.len,
        exact.served_cache.hits,
        exact.served_cache.hits + exact.served_cache.misses,
        exact.served_cache.len,
    );
    sections.push(exact_json(&exact));

    let json = render_json(&sections);
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("\nwrote {out}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_benchmark_runs_and_engines_agree() {
        // Tiny run: the point is the equivalence check and the plumbing,
        // not the numbers.
        let result = engine_benchmark(8, 4, 500, 7, 1).unwrap();
        assert_eq!(result.total_cycles, 525);
        assert!(result.optimized_cps > 0.0);
        assert!(result.reference_cps > 0.0);
    }

    #[test]
    fn sweep_benchmark_runs_and_sweeps_agree() {
        let result = sweep_benchmark(8, 1).unwrap();
        assert_eq!(result.points, 8);
        assert!(result.serial_pps > 0.0);
        // On multi-core CI the parallel leg runs; on a single core it is
        // skipped but the detected worker count is still reported.
        assert!(result.workers >= 1);
        if result.workers > 1 {
            assert!(result.parallel_pps.is_some());
        } else {
            assert!(result.parallel_pps.is_none());
        }
    }

    #[test]
    fn scaling_benchmark_runs_and_gates_hold() {
        // Tiny run: the agreement + determinism gates and the plumbing are
        // the point, not the throughput numbers.
        let result = scaling_benchmark(8, 4, 400, 7, 8, 1).unwrap();
        assert_eq!(result.replications, 8);
        assert_eq!(result.total_cycles, 420);
        assert!(result.scalar_rps > 0.0);
        assert!(result.batched_rps > 0.0);
        assert_eq!(result.curve[0].0, 1);
        assert_eq!(result.curve.last().unwrap().0, available_workers().max(1));
    }

    #[test]
    fn scaling_json_records_curve_and_speedup() {
        let scaling = ScalingResult {
            replications: 64,
            total_cycles: 21_000,
            scalar_rps: 100.0,
            batched_rps: 300.0,
            curve: vec![(1, 300.0), (2, 580.0), (4, 1100.0)],
        };
        let json = render_json(&[scaling_json(8, 4, 42, &scaling)]);
        assert!(json.contains("\"single_worker_speedup\": 3.000"));
        assert!(json.contains("\"replications\": 64"));
        assert!(json.contains("{ \"workers\": 4, \"replications_per_sec\": 1100.00 }"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let engine = EngineResult {
            total_cycles: 210_000,
            optimized_cps: 2.0e6,
            reference_cps: 1.0e6,
        };
        let sweep = SweepResult {
            points: 64,
            workers: 8,
            serial_pps: 10.0,
            parallel_pps: Some(40.0),
        };
        let json = render_json(&[
            engine_json(32, 8, 200_000, 42, &engine),
            sweep_json(64, &sweep),
        ]);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"speedup\": 2.000"));
        assert!(json.contains("\"speedup\": 4.000"));
        assert!(json.contains("\"optimized_cycles_per_sec\": 2000000.0"));
    }

    #[test]
    fn single_worker_sweep_json_omits_speedup() {
        let sweep = SweepResult {
            points: 64,
            workers: 1,
            serial_pps: 10.0,
            parallel_pps: None,
        };
        let json = render_json(&[sweep_json(64, &sweep)]);
        assert!(json.contains("\"workers\": 1"), "detected value reported");
        assert!(!json.contains("speedup"), "no misleading 1.00x speedup");
        assert!(!json.contains("parallel_points_per_sec"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn exact_json_has_both_subsections() {
        let exact = ExactResult {
            n: 256,
            m: 16,
            b: 8,
            groups: 16,
            dp_seconds: 0.8,
            transform_seconds: 0.02,
            lumped_n: 16,
            lumped_m: 8,
            lumped_b: 4,
            lumped_states: 481,
            lumped_throughput: 3.9963,
            lumped_seconds: 0.01,
            unlumped_rejected: true,
            pmf_cache: mbus_core::stats::cache::CacheStats {
                hits: 3,
                misses: 2,
                inserts: 2,
                len: 2,
            },
            served_cache: mbus_core::stats::cache::CacheStats {
                hits: 10,
                misses: 1,
                inserts: 1,
                len: 1,
            },
        };
        let json = render_json(&[exact_json(&exact)]);
        assert!(json.contains("\"speedup\": 40.0"));
        assert!(json.contains("\"unlumped_rejected\": true"));
        assert!(json.contains("\"states\": 481"));
        assert!(json.contains("\"pmf\": { \"hits\": 3, \"misses\": 2"));
        assert!(json.contains("\"served_tables\": { \"hits\": 10"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn exact_benchmark_measures_a_real_separation() {
        // One rep keeps this test cheap; the structural claims (agreement
        // gate passed, unlumped rejection observed, transform faster) are
        // what matter, not the exact ratio.
        let result = exact_benchmark(1).unwrap();
        assert_eq!(result.groups, 16);
        assert!(result.unlumped_rejected, "old engine must reject 16x8");
        assert!(result.lumped_states > 0);
        assert!(result.lumped_throughput > 3.9 && result.lumped_throughput <= 4.0 + 1e-9);
        assert!(
            result.speedup() > 1.0,
            "transform slower than DP: {:.3}s vs {:.3}s",
            result.transform_seconds,
            result.dp_seconds
        );
    }
}
