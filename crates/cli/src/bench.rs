//! `mbus bench` — the workspace throughput harness.
//!
//! Two measurements, reported to stdout and written as JSON:
//!
//! 1. **Engine throughput**: simulated cycles/sec of the optimized
//!    [`Simulator`] against the frozen pre-optimization
//!    [`ReferenceSimulator`], on the 32×32×8 full-connection network under
//!    hierarchical traffic with resubmission — the configuration the
//!    zero-allocation work targets. Both engines must produce the *same*
//!    report (they share RNG draw order), so the harness doubles as an
//!    end-to-end equivalence check.
//! 2. **Sweep throughput**: analytical sweep points/sec of
//!    [`bus_sweep_with_workers`] serial (1 worker) vs parallel (all cores)
//!    on a 64-point full-connection sweep at N = 64.
//!
//! Timings take the best of `--reps` repetitions, with the two sides of each
//! comparison interleaved rep by rep so background load on a shared machine
//! penalizes both alike rather than whichever happened to run second.

use crate::args::Args;
use mbus_core::analysis::sweep::bus_sweep_with_workers;
use mbus_core::prelude::*;
use mbus_core::sim::reference::ReferenceSimulator;
use mbus_core::stats::parallel::available_workers;
use std::time::Instant;

/// Best-of-`reps` wall times of `a` and `b`, interleaved (a, b, a, b, …) so
/// background load on a shared machine hits both measurements alike instead
/// of skewing whichever ran second.
fn best_seconds_interleaved<A: FnMut(), B: FnMut()>(reps: usize, mut a: A, mut b: B) -> (f64, f64) {
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        a();
        best_a = best_a.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        b();
        best_b = best_b.min(start.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

struct EngineResult {
    total_cycles: u64,
    optimized_cps: f64,
    reference_cps: f64,
}

/// Times the optimized engine against the frozen reference engine.
fn engine_benchmark(
    n: usize,
    b: usize,
    cycles: u64,
    seed: u64,
    reps: usize,
) -> Result<EngineResult, String> {
    let net = BusNetwork::new(n, n, b, ConnectionScheme::Full).map_err(|e| e.to_string())?;
    let matrix = paper_params::hierarchical(n)
        .map_err(|e| e.to_string())?
        .matrix();
    let config = SimConfig::new(cycles)
        .with_warmup(cycles / 20)
        .with_seed(seed)
        .with_resubmission(true);
    let total_cycles = cycles + cycles / 20;

    let mut optimized = Simulator::build(&net, &matrix, 1.0).map_err(|e| e.to_string())?;
    let mut reference = ReferenceSimulator::build(&net, &matrix, 1.0).map_err(|e| e.to_string())?;

    // The engines must agree exactly before their speeds are worth
    // comparing; `run` reseeds from the config, so this does not perturb
    // the timed runs below.
    let opt_report = optimized.run(&config).map_err(|e| e.to_string())?;
    let ref_report = reference.run(&config).map_err(|e| e.to_string())?;
    if opt_report != ref_report {
        return Err("optimized and reference engines diverged — benchmark void".into());
    }

    let (opt_secs, ref_secs) = best_seconds_interleaved(
        reps,
        || {
            // lint:allow(no_panic, the same run succeeded in the divergence check above; timing closures must stay Result-free)
            optimized.run(&config).expect("checked above");
        },
        || {
            // lint:allow(no_panic, the same run succeeded in the divergence check above; timing closures must stay Result-free)
            reference.run(&config).expect("checked above");
        },
    );
    Ok(EngineResult {
        total_cycles,
        optimized_cps: total_cycles as f64 / opt_secs,
        reference_cps: total_cycles as f64 / ref_secs,
    })
}

struct SweepResult {
    points: usize,
    workers: usize,
    serial_pps: f64,
    parallel_pps: f64,
}

/// Times a full-connection analytical bus sweep serially and in parallel.
fn sweep_benchmark(n: usize, reps: usize) -> Result<SweepResult, String> {
    let matrix = paper_params::hierarchical(n)
        .map_err(|e| e.to_string())?
        .matrix();
    let bus_counts: Vec<usize> = (1..=n).collect();
    let factory = |_| Ok(ConnectionScheme::Full);
    let workers = available_workers();

    let serial = bus_sweep_with_workers(n, n, &bus_counts, &factory, &matrix, 1.0, 1)
        .map_err(|e| e.to_string())?;
    let parallel = bus_sweep_with_workers(n, n, &bus_counts, &factory, &matrix, 1.0, workers)
        .map_err(|e| e.to_string())?;
    if serial != parallel {
        return Err("serial and parallel sweeps diverged — benchmark void".into());
    }

    let (serial_secs, parallel_secs) = best_seconds_interleaved(
        reps,
        || {
            // lint:allow(no_panic, the same sweep succeeded in the divergence check above; timing closures must stay Result-free)
            bus_sweep_with_workers(n, n, &bus_counts, &factory, &matrix, 1.0, 1).unwrap();
        },
        || {
            // lint:allow(no_panic, the same sweep succeeded in the divergence check above; timing closures must stay Result-free)
            bus_sweep_with_workers(n, n, &bus_counts, &factory, &matrix, 1.0, workers).unwrap();
        },
    );
    Ok(SweepResult {
        points: bus_counts.len(),
        workers,
        serial_pps: bus_counts.len() as f64 / serial_secs,
        parallel_pps: bus_counts.len() as f64 / parallel_secs,
    })
}

/// Hand-rolled JSON for the benchmark report (the workspace carries no JSON
/// dependency); every value is a number or bool, so no escaping is needed.
fn render_json(
    n: usize,
    b: usize,
    cycles: u64,
    seed: u64,
    engine: &EngineResult,
    sweep_n: usize,
    sweep: &SweepResult,
) -> String {
    format!(
        "{{\n  \"engine\": {{\n    \"n\": {n},\n    \"m\": {n},\n    \"b\": {b},\n    \
         \"scheme\": \"full\",\n    \"workload\": \"hierarchical\",\n    \"rate\": 1.0,\n    \
         \"resubmission\": true,\n    \"cycles\": {cycles},\n    \"seed\": {seed},\n    \
         \"total_cycles_per_run\": {total},\n    \
         \"optimized_cycles_per_sec\": {ocps:.1},\n    \
         \"reference_cycles_per_sec\": {rcps:.1},\n    \
         \"speedup\": {espeed:.3}\n  }},\n  \"sweep\": {{\n    \
         \"n\": {sweep_n},\n    \"points\": {points},\n    \"workers\": {workers},\n    \
         \"serial_points_per_sec\": {spps:.2},\n    \
         \"parallel_points_per_sec\": {ppps:.2},\n    \
         \"speedup\": {sspeed:.3}\n  }}\n}}\n",
        total = engine.total_cycles,
        ocps = engine.optimized_cps,
        rcps = engine.reference_cps,
        espeed = engine.optimized_cps / engine.reference_cps,
        points = sweep.points,
        workers = sweep.workers,
        spps = sweep.serial_pps,
        ppps = sweep.parallel_pps,
        sspeed = sweep.parallel_pps / sweep.serial_pps,
    )
}

/// `mbus bench`.
pub fn bench(args: &Args) -> Result<(), String> {
    let n = args.get_or("n", 32usize)?;
    let b = args.get_or("b", 8usize)?;
    let cycles = args.get_or("cycles", 200_000u64)?;
    let seed = args.get_or("seed", 42u64)?;
    let reps = args.get_or("reps", 5usize)?;
    let sweep_n = args.get_or("sweep-n", 64usize)?;
    let out = args.get_or("out", "BENCH_sim.json".to_owned())?;

    println!("engine: {n}x{n}x{b} full, hierarchical, r = 1.0, resubmission, {cycles} cycles");
    let engine = engine_benchmark(n, b, cycles, seed, reps)?;
    println!(
        "  optimized: {:>12.0} cycles/sec\n  reference: {:>12.0} cycles/sec\n  speedup:   {:>12.2}x",
        engine.optimized_cps,
        engine.reference_cps,
        engine.optimized_cps / engine.reference_cps
    );

    println!("\nsweep: {sweep_n} full-connection points at N = {sweep_n}, hierarchical, r = 1.0");
    let sweep = sweep_benchmark(sweep_n, reps)?;
    println!(
        "  serial:    {:>12.1} points/sec\n  parallel:  {:>12.1} points/sec ({} workers)\n  speedup:   {:>12.2}x",
        sweep.serial_pps,
        sweep.parallel_pps,
        sweep.workers,
        sweep.parallel_pps / sweep.serial_pps
    );

    let json = render_json(n, b, cycles, seed, &engine, sweep_n, &sweep);
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("\nwrote {out}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_benchmark_runs_and_engines_agree() {
        // Tiny run: the point is the equivalence check and the plumbing,
        // not the numbers.
        let result = engine_benchmark(8, 4, 500, 7, 1).unwrap();
        assert_eq!(result.total_cycles, 525);
        assert!(result.optimized_cps > 0.0);
        assert!(result.reference_cps > 0.0);
    }

    #[test]
    fn sweep_benchmark_runs_and_sweeps_agree() {
        let result = sweep_benchmark(8, 1).unwrap();
        assert_eq!(result.points, 8);
        assert!(result.serial_pps > 0.0);
        assert!(result.parallel_pps > 0.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let engine = EngineResult {
            total_cycles: 210_000,
            optimized_cps: 2.0e6,
            reference_cps: 1.0e6,
        };
        let sweep = SweepResult {
            points: 64,
            workers: 8,
            serial_pps: 10.0,
            parallel_pps: 40.0,
        };
        let json = render_json(32, 8, 200_000, 42, &engine, 64, &sweep);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"speedup\": 2.000"));
        assert!(json.contains("\"speedup\": 4.000"));
        assert!(json.contains("\"optimized_cycles_per_sec\": 2000000.0"));
    }
}
