//! `mbus` — command-line interface to the multibus workspace.
//!
//! Regenerates every table and figure of Chen & Sheu (ICDCS 1988), runs
//! analytical/exact/simulated evaluations of arbitrary configurations, and
//! emits the EXPERIMENTS report. Run `mbus help` for usage.

mod args;
mod bench;
mod commands;
mod fabric_cmd;
mod serve;
mod trace_cmd;

use args::Args;
use std::process::ExitCode;

const HELP: &str = "\
mbus - multiple bus interconnection networks (Chen & Sheu, ICDCS 1988)

USAGE:
    mbus <COMMAND> [OPTIONS]

COMMANDS:
    table <1|2|3|4|5|6>   regenerate a paper table (markdown; --csv for CSV)
                          table 1 takes --n --b --g --k (default 16 8 2 8)
    tables                regenerate all bandwidth tables (II-VI)
    figures               re-draw the paper's Figures 1-4 as ASCII art
    render                draw one topology: --scheme full|single|partial|
                          kclass|crossbar --n --b [--groups g] [--classes k]
                          [--dot]
    ratios                print the Section IV bus-halving ratios
    sweep                 CSV bandwidth-vs-B series for all schemes:
                          --n --rate [--workload ...]
    analyze               closed-form evaluation: --scheme --n --b --rate
                          [--workload hier|uniform|favorite] [--clusters c]
                          [--alpha a] [--groups g] [--classes k]
    simulate              simulate the same configuration: adds --cycles
                          --warmup --seed --replications --resubmission
                          [--fail bus@cycle|bus@start-end[,...]]
                          [--trace FILE  record a binary per-cycle event
                          trace for 'mbus trace' (single run only)]
    trace <analyze|vcd>   post-sim analytics over a --trace recording:
                          analyze FILE [--json|--markdown] prints per-bus
                          utilization, backpressure, request-to-grant
                          delay quantiles, and the bottleneck ranking;
                          vcd FILE [--out FILE.vcd] exports a waveform
                          dump for GTKWave-style viewers
    fabric                hierarchical cluster-of-buses fabric: analytic
                          decomposition vs routed multi-hop simulation
                          [--ks 4,4] [--buses 2] [--uplink 1] [--rate 0.5]
                          [--locality 0.6] [--cycles 20000  0 = analytic
                          only] [--warmup c/10] [--seed 42]
                          [--failed link[,link...]  fail links all run]
                          [--trace FILE] [--json];
                          --sweep grids tree depth (from --n, --max-depth)
                          x locality [--localities 0.9,0.6,0.3,0.0];
                          --campaign sweeps uplink-failure combos through
                          the analytic model (availability-weighted E[BW],
                          per-cluster decay) [--max-failures f]
                          [--samples 512] [--limit 5000] [--q 0.05]
    faults                degraded-mode fault campaign: evaluates analytical
                          bandwidth over C(B,f) bus-failure combos
                          (exhaustive or Monte-Carlo past --limit) for the
                          --scheme/--n/--b/--rate configuration
                          [--max-failures f] [--samples 512] [--limit 5000]
                          [--seed s] [--workers w] [--q 0.05] [--json]
                          [--check] [--check-cycles 100000]
    validate              compare analysis vs exact vs simulation on a grid
    lint                  run the workspace static-analysis pass (R1 panic
                          paths, R2 lossy casts, R3 equation traceability,
                          R4 invariant wiring, R5 unsafe SAFETY comments,
                          R6 lock discipline, R7 atomics ordering,
                          R8 unchecked Results); [--json] [--sarif]
                          [--unsafe-report] [--root path];
                          non-zero exit on violations
    experiments           print the EXPERIMENTS.md report (paper vs computed)
    bench                 throughput harness: optimized vs reference engine
                          (cycles/sec), serial vs parallel sweep
                          (points/sec; skipped on one core), batched vs
                          scalar replication throughput with a per-worker
                          scaling curve, and the exact engines (subset
                          transform vs DP, lumped Markov);
                          and the fabric routed-vs-flat comparison at
                          depths 2-3 with collect-mode overhead;
                          writes BENCH_sim.json
                          [--n 32] [--b 8] [--cycles 200000] [--seed 42]
                          [--reps 5] [--sweep-n 64] [--replications 64]
                          [--scaling-cycles 20000] [--out BENCH_sim.json]
                          [--exact  run only the exact-engine section]
                          [--scaling  run only the replication-scaling
                          section]
                          [--fabric  run only the fabric section]
    serve                 run the bandwidth-query HTTP service:
                          POST /v1/{bandwidth,exact,simulate,degraded,fabric},
                          GET /metrics; graceful drain on SIGTERM/ctrl-c
                          [--addr 127.0.0.1:7700] [--workers cores]
                          [--cache-cap 256] [--queue-cap 64]
                          [--max-cycles 2000000]
    loadgen               drive a running server with a deterministic
                          mixed-endpoint grid; reports throughput, latency
                          quantiles, and the cold/warm cache speedup;
                          writes BENCH_server.json
                          [--addr 127.0.0.1:7700] [--concurrency 4]
                          [--requests 256] [--passes 2]
                          [--out BENCH_server.json]
    help                  show this message

EXAMPLES:
    mbus table 2
    mbus analyze --scheme kclass --n 16 --b 8 --rate 0.5
    mbus simulate --scheme full --n 8 --b 4 --cycles 100000 --fail 2@50000
    mbus simulate --scheme single --n 16 --b 4 --trace run.mbt
    mbus fabric --ks 4,4 --buses 2 --locality 0.6 --rate 0.5
    mbus fabric --sweep --n 16 --cycles 10000 --json
    mbus trace analyze run.mbt --json
    mbus faults --scheme kclass --n 8 --b 4 --check
    mbus lint --json
    mbus lint --unsafe-report
    mbus render --scheme kclass --n 3 --m 6 --b 4 --classes 3
    mbus serve --addr 127.0.0.1:7700 --workers 4
    mbus loadgen --requests 512 --concurrency 8
";

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let result = match args.command.as_str() {
        "table" => commands::table(&args),
        "tables" => commands::tables(&args),
        "figures" => commands::figures(),
        "render" => commands::render(&args),
        "ratios" => commands::ratios(),
        "analyze" => commands::analyze(&args),
        "simulate" => commands::simulate(&args),
        "faults" => commands::faults(&args),
        "sweep" => commands::sweep(&args),
        "validate" => commands::validate(&args),
        "lint" => commands::lint(&args),
        "experiments" => commands::experiments(),
        "fabric" => fabric_cmd::fabric(&args),
        "trace" => trace_cmd::trace(&args),
        "bench" => bench::bench(&args),
        "serve" => serve::serve(&args),
        "loadgen" => serve::loadgen_cmd(&args),
        "help" | "" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'; try 'mbus help'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
