//! `mbus trace` — post-sim analysis of binary traces written by
//! `mbus simulate --trace FILE`.
//!
//! Subcommands:
//!
//! * `analyze FILE` — stream the trace once and print per-bus
//!   utilization, backpressure, request-to-grant delay quantiles, and the
//!   bottleneck ranking (`--json` / `--markdown` for machine-readable
//!   output);
//! * `vcd FILE` — convert the trace to a value-change dump for waveform
//!   viewers (`--out FILE.vcd`, defaulting to the input with a `.vcd`
//!   extension).

use crate::args::Args;
use mbus_core::trace::{analyze, render, vcd, TraceReader};
use std::fs::File;
use std::io::BufReader;

/// Dispatches `mbus trace <analyze|vcd> FILE …`.
///
/// # Errors
///
/// Returns a message for unknown subcommands, missing files, and corrupt
/// or truncated traces.
pub fn trace(args: &Args) -> Result<(), String> {
    let Some(sub) = args.positional.first() else {
        return Err("usage: mbus trace <analyze|vcd> FILE".into());
    };
    let Some(path) = args.positional.get(1) else {
        return Err(format!("usage: mbus trace {sub} FILE"));
    };
    let open = || -> Result<TraceReader<BufReader<File>>, String> {
        let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
        TraceReader::new(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
    };
    match sub.as_str() {
        "analyze" => {
            let mut reader = open()?;
            let analysis = analyze(&mut reader).map_err(|e| format!("{path}: {e}"))?;
            if args.flag("json") {
                print!("{}", render::render_json(&analysis));
            } else if args.flag("markdown") {
                print!("{}", render::render_markdown(&analysis));
            } else {
                print!("{}", render::render_text(&analysis));
            }
            Ok(())
        }
        "vcd" => {
            let out_path = match args.get("out") {
                Some(out) => out.to_owned(),
                None => {
                    let stem = path.strip_suffix(".mbt").unwrap_or(path);
                    format!("{stem}.vcd")
                }
            };
            let mut reader = open()?;
            let file = File::create(&out_path).map_err(|e| format!("{out_path}: {e}"))?;
            let mut sink = std::io::BufWriter::new(file);
            vcd::export_vcd(&mut reader, &mut sink).map_err(|e| format!("{out_path}: {e}"))?;
            use std::io::Write as _;
            sink.flush().map_err(|e| format!("{out_path}: {e}"))?;
            println!(
                "wrote {out_path} ({} cycles, {} buses)",
                reader.cycles_read(),
                reader.header().buses
            );
            Ok(())
        }
        other => Err(format!(
            "unknown trace subcommand '{other}' (expected analyze|vcd)"
        )),
    }
}
