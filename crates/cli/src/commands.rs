//! Implementations of the `mbus` subcommands.

use crate::args::Args;
use mbus_core::prelude::*;
use mbus_core::report::cost_table_markdown;
use mbus_core::{exact, tables, topology};

/// Builds a connection scheme from `--scheme` and its modifiers.
fn scheme_from(args: &Args, m: usize, b: usize) -> Result<ConnectionScheme, String> {
    match args.get("scheme").unwrap_or("full") {
        "full" => Ok(ConnectionScheme::Full),
        "crossbar" => Ok(ConnectionScheme::Crossbar),
        "single" => ConnectionScheme::balanced_single(m, b).map_err(|e| e.to_string()),
        "partial" => {
            let groups = args.get_or("groups", 2usize)?;
            Ok(ConnectionScheme::PartialGroups { groups })
        }
        "kclass" => {
            let classes = args.get_or("classes", b)?;
            ConnectionScheme::uniform_classes(m, classes).map_err(|e| e.to_string())
        }
        other => Err(format!(
            "unknown scheme '{other}' (expected full|single|partial|kclass|crossbar)"
        )),
    }
}

/// Builds the request matrix from `--workload` and its modifiers.
fn workload_from(args: &Args, n: usize, m: usize) -> Result<RequestMatrix, String> {
    match args.get("workload").unwrap_or("hier") {
        "hier" | "hierarchical" => {
            let clusters = args.get_or("clusters", 4usize)?;
            if n != m {
                return Err("hierarchical workload requires N = M (paired leaves)".into());
            }
            let model = HierarchicalModel::two_level_paired(n, clusters, [0.6, 0.3, 0.1])
                .map_err(|e| e.to_string())?;
            Ok(model.matrix())
        }
        "uniform" => Ok(UniformModel::new(n, m).map_err(|e| e.to_string())?.matrix()),
        "favorite" => {
            let alpha = args.get_or("alpha", 0.5f64)?;
            Ok(FavoriteModel::new(n, m, alpha)
                .map_err(|e| e.to_string())?
                .matrix())
        }
        other => Err(format!(
            "unknown workload '{other}' (expected hier|uniform|favorite)"
        )),
    }
}

fn network_from(args: &Args) -> Result<(BusNetwork, RequestMatrix, f64), String> {
    let n = args.get_or("n", 8usize)?;
    let m = args.get_or("m", n)?;
    let b = args.get_or("b", 4usize)?;
    let rate = args.get_or("rate", 1.0f64)?;
    let scheme = scheme_from(args, m, b)?;
    let net = BusNetwork::new(n, m, b, scheme).map_err(|e| e.to_string())?;
    let matrix = workload_from(args, n, m)?;
    Ok((net, matrix, rate))
}

/// `mbus table <id>`.
pub fn table(args: &Args) -> Result<(), String> {
    let id = args
        .positional
        .first()
        .ok_or("table needs a number (1-6)")?
        .as_str();
    if id == "1" {
        let n = args.get_or("n", 16usize)?;
        let b = args.get_or("b", 8usize)?;
        let g = args.get_or("g", 2usize)?;
        let k = args.get_or("k", b)?;
        let rows = tables::table1(n, b, g, k).map_err(|e| e.to_string())?;
        print!("{}", cost_table_markdown(&rows));
        return Ok(());
    }
    let table = match id {
        "2" => tables::table2(),
        "3" => tables::table3(),
        "4" => tables::table4(),
        "5" => tables::table5(),
        "6" => tables::table6(),
        other => return Err(format!("unknown table '{other}'")),
    };
    if args.flag("csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_markdown());
        println!(
            "max |computed - paper| over {} legible cells: {:.4}",
            table.reference_cell_count(),
            table.max_abs_deviation()
        );
    }
    Ok(())
}

/// `mbus tables`.
pub fn tables(args: &Args) -> Result<(), String> {
    for table in tables::all_bandwidth_tables() {
        if args.flag("csv") {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.to_markdown());
        }
    }
    Ok(())
}

/// `mbus figures`.
pub fn figures() -> Result<(), String> {
    for (caption, art) in tables::figures() {
        println!("{caption}\n");
        println!("{art}");
    }
    Ok(())
}

/// `mbus render`.
pub fn render(args: &Args) -> Result<(), String> {
    // Rendering needs only the topology — no workload — so N ≠ M shapes
    // like the paper's Fig. 3 (3x6x4) work without a workload flag.
    let n = args.get_or("n", 8usize)?;
    let m = args.get_or("m", n)?;
    let b = args.get_or("b", 4usize)?;
    let scheme = scheme_from(args, m, b)?;
    let net = BusNetwork::new(n, m, b, scheme).map_err(|e| e.to_string())?;
    if args.flag("dot") {
        print!("{}", topology::render::dot_graph(&net));
    } else {
        print!("{}", topology::render::ascii_diagram(&net));
    }
    Ok(())
}

/// `mbus ratios`.
pub fn ratios() -> Result<(), String> {
    println!("Section IV bus-halving ratios (single connection, N = 32):");
    println!("MBW(B = N) / MBW(B = N/2)\n");
    println!("| r | hierarchical | uniform |");
    println!("|---|---|---|");
    for (r, hier, unif) in tables::bus_halving_ratios() {
        println!("| {r} | {hier:.3} | {unif:.3} |");
    }
    println!("\nPaper quotes: ~1.6 / ~1.5 at r = 1.0, 1.28 / 1.2 at r = 0.5.");
    Ok(())
}

/// `mbus analyze`.
pub fn analyze(args: &Args) -> Result<(), String> {
    let (net, matrix, rate) = network_from(args)?;
    let system = System::from_matrix(net, matrix, rate).map_err(|e| e.to_string())?;
    let breakdown = system.analytic().map_err(|e| e.to_string())?;
    println!("network:        {}", system.network());
    println!("request rate r: {rate}");
    println!(
        "offered load:   {:.4} requests/cycle",
        breakdown.offered_load
    );
    println!(
        "bandwidth:      {:.4} requests/cycle (analytical)",
        breakdown.bandwidth
    );
    println!("acceptance:     {:.4}", breakdown.acceptance);
    if let Some(busy) = &breakdown.per_bus_busy {
        let formatted: Vec<String> = busy.iter().map(|p| format!("{p:.3}")).collect();
        println!("per-bus busy:   [{}]", formatted.join(", "));
    }
    match system.exact() {
        Ok(exact) => {
            println!("exact:          {exact:.4} requests/cycle");
            println!(
                "approx. error:  {:+.3}%",
                100.0 * (breakdown.bandwidth - exact) / exact
            );
        }
        Err(_) => println!("exact:          (network too large to enumerate)"),
    }
    let cost = system.cost();
    println!("connections:    {}", cost.connections);
    println!("fault degree:   {}", cost.fault_tolerance_degree);
    println!(
        "perf/cost:      {:.4} bandwidth per 1000 connections",
        1000.0 * breakdown.bandwidth / cost.connections as f64
    );
    Ok(())
}

/// Parses a `--fail` spec: comma-separated `bus@cycle` (permanent failure)
/// or `bus@start-end` (failure window: fail at `start`, repair at `end`).
/// Every cycle must lie inside the run (`< warmup + cycles`); windows must
/// have `end > start`.
fn parse_faults(spec: &str, total_cycles: u64) -> Result<mbus_core::sim::FaultSchedule, String> {
    use mbus_core::sim::{FaultEvent, FaultEventKind};
    let check = |cycle: u64| {
        if cycle >= total_cycles {
            Err(format!(
                "fault cycle {cycle} beyond run length {total_cycles}"
            ))
        } else {
            Ok(cycle)
        }
    };
    let mut events = Vec::new();
    for part in spec.split(',') {
        let (bus, when) = part
            .split_once('@')
            .ok_or_else(|| format!("--fail expects bus@cycle or bus@start-end, got '{part}'"))?;
        let bus: usize = bus.parse().map_err(|_| format!("bad bus '{bus}'"))?;
        if let Some((start, end)) = when.split_once('-') {
            let start: u64 = start.parse().map_err(|_| format!("bad cycle '{start}'"))?;
            let end: u64 = end.parse().map_err(|_| format!("bad cycle '{end}'"))?;
            if end <= start {
                return Err(format!("failure window '{part}' must end after it starts"));
            }
            events.push(FaultEvent {
                cycle: check(start)?,
                bus,
                kind: FaultEventKind::Fail,
            });
            events.push(FaultEvent {
                cycle: check(end)?,
                bus,
                kind: FaultEventKind::Repair,
            });
        } else {
            let cycle: u64 = when.parse().map_err(|_| format!("bad cycle '{when}'"))?;
            events.push(FaultEvent {
                cycle: check(cycle)?,
                bus,
                kind: FaultEventKind::Fail,
            });
        }
    }
    mbus_core::sim::FaultSchedule::from_events(events).map_err(|e| e.to_string())
}

/// `mbus simulate`.
pub fn simulate(args: &Args) -> Result<(), String> {
    let (net, matrix, rate) = network_from(args)?;
    let cycles = args.get_or("cycles", 100_000u64)?;
    let warmup = args.get_or("warmup", cycles / 20)?;
    let seed = args.get_or("seed", 0u64)?;
    let replications = args.get_or("replications", 1usize)?;
    let mut config = SimConfig::new(cycles)
        .with_warmup(warmup)
        .with_seed(seed)
        .with_resubmission(args.flag("resubmission"));
    if let Some(spec) = args.get("fail") {
        config = config.with_faults(parse_faults(spec, cycles + warmup)?);
    }
    let system = System::from_matrix(net, matrix, rate).map_err(|e| e.to_string())?;
    let trace_path = args.get("trace");
    if trace_path.is_some() && replications > 1 {
        return Err("--trace records a single run; drop --replications".into());
    }

    if replications > 1 {
        let report = system
            .simulate_replicated(&config, replications)
            .map_err(|e| e.to_string())?;
        println!("replications:  {}", report.replications);
        println!("bandwidth:     {}", report.bandwidth);
        println!("acceptance:    {:.4}", report.acceptance);
    } else {
        let report = match trace_path {
            Some(path) => {
                let file =
                    std::fs::File::create(path).map_err(|e| format!("--trace {path}: {e}"))?;
                let sink = std::io::BufWriter::new(file);
                let (report, sink) = system
                    .simulate_traced(&config, sink)
                    .map_err(|e| e.to_string())?;
                use std::io::Write as _;
                sink.into_inner()
                    .map_err(|e| format!("--trace {path}: {e}"))?
                    .flush()
                    .map_err(|e| format!("--trace {path}: {e}"))?;
                println!("trace:         {path} ({} measured cycles)", report.cycles);
                report
            }
            None => system.simulate(&config).map_err(|e| e.to_string())?,
        };
        println!(
            "cycles:        {} (+{} warmup)",
            report.cycles, report.warmup
        );
        println!("bandwidth:     {}", report.bandwidth);
        println!("offered load:  {:.4}", report.offered_load);
        println!("acceptance:    {:.4}", report.acceptance);
        if report.unreachable_rate > 0.0 {
            println!(
                "unreachable:   {:.4} requests/cycle",
                report.unreachable_rate
            );
        }
        let busy: Vec<String> = report
            .bus_utilization
            .iter()
            .map(|u| format!("{u:.3}"))
            .collect();
        println!("bus util:      [{}]", busy.join(", "));
        if args.flag("resubmission") {
            println!(
                "mean wait:     {:.4} cycles (max {})",
                report.mean_wait, report.max_wait
            );
        }
    }
    let analytic = system.analytic().map_err(|e| e.to_string())?;
    println!(
        "analytical:    {:.4} (no-fault reference)",
        analytic.bandwidth
    );
    Ok(())
}

/// Builds a [`campaign::CampaignConfig`] from `--max-failures --samples
/// --limit --seed --workers --q`.
fn campaign_config_from(args: &Args) -> Result<mbus_core::campaign::CampaignConfig, String> {
    let mut config = mbus_core::campaign::CampaignConfig::default();
    if let Some(raw) = args.get("max-failures") {
        let max: usize = raw
            .parse()
            .map_err(|_| format!("--max-failures: cannot parse '{raw}'"))?;
        config.max_failures = Some(max);
    }
    config.samples = args.get_or("samples", config.samples)?;
    config.exhaustive_limit = args.get_or("limit", config.exhaustive_limit)?;
    config.seed = args.get_or("seed", config.seed)?;
    config.workers = args.get_or("workers", config.workers)?;
    config.bus_failure_prob = args.get_or("q", config.bus_failure_prob)?;
    Ok(config)
}

/// `mbus faults`: degraded-mode bandwidth campaign over bus-failure
/// combinations, with optional simulator cross-validation.
pub fn faults(args: &Args) -> Result<(), String> {
    use mbus_core::campaign;
    let (net, matrix, rate) = network_from(args)?;
    let config = campaign_config_from(args)?;
    let report = campaign::run_campaign(&net, &matrix, rate, &config).map_err(|e| e.to_string())?;
    if args.flag("json") {
        print!("{}", campaign::render_json(&report));
    } else {
        print!("{}", campaign::render_markdown(&report));
    }
    if args.flag("check") {
        let cycles = args.get_or("check-cycles", 100_000u64)?;
        println!("\nCross-validation against the simulator ({cycles} cycles, worst mask per f):\n");
        println!("| mask | analytical | simulated | ±CI | gap |");
        println!("|---|---|---|---|---|");
        for level in report.levels.iter().filter(|level| level.failures > 0) {
            let mask = FaultMask::with_failures(net.buses(), &level.worst_mask)
                .map_err(|e| e.to_string())?;
            let check = campaign::cross_validate(&net, &matrix, rate, &mask, cycles, config.seed)
                .map_err(|e| e.to_string())?;
            let failed: Vec<String> = check.failed_buses.iter().map(usize::to_string).collect();
            println!(
                "| {{{}}} | {:.4} | {:.4} | {:.4} | {:+.4} |",
                failed.join(","),
                check.analytical,
                check.simulated,
                check.sim_half_width,
                check.gap,
            );
        }
    }
    Ok(())
}

/// The EXPERIMENTS.md "Degraded-mode bandwidth" section, shared between
/// `mbus experiments` and the fault-campaign documentation flow.
pub fn degraded_section() -> Result<String, String> {
    use mbus_core::campaign::{run_campaign, CampaignConfig};
    let n = 8;
    let b = 4;
    let rate = 1.0;
    let matrix = mbus_core::paper_params::hierarchical(n)
        .map_err(|e| e.to_string())?
        .matrix();
    let config = CampaignConfig::default();
    let mut out = String::new();
    out.push_str("\n## Degraded-mode bandwidth (Table I, quantified)\n\n");
    out.push_str(
        "Table I grades each scheme's fault tolerance symbolically; the fault \
         campaign (`mbus faults`) makes it quantitative. Mean analytical \
         bandwidth over every C(B, f) bus-failure combination \
         (8x8x4, hierarchical, r = 1):\n\n",
    );
    let schemes: Vec<(&str, ConnectionScheme)> = vec![
        ("full", ConnectionScheme::Full),
        (
            "single",
            ConnectionScheme::balanced_single(n, b).map_err(|e| e.to_string())?,
        ),
        ("partial g=2", ConnectionScheme::PartialGroups { groups: 2 }),
        (
            "kclass K=4",
            ConnectionScheme::uniform_classes(n, b).map_err(|e| e.to_string())?,
        ),
        ("crossbar", ConnectionScheme::Crossbar),
    ];
    out.push_str("| scheme | f=0 | f=1 | f=2 | f=3 | f=4 | E[BW], q=0.05 |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    let mut kclass_decay: Option<Vec<Vec<f64>>> = None;
    for (name, scheme) in schemes {
        let net = BusNetwork::new(n, n, b, scheme).map_err(|e| e.to_string())?;
        let report = run_campaign(&net, &matrix, rate, &config).map_err(|e| e.to_string())?;
        let cells: Vec<String> = report
            .levels
            .iter()
            .map(|level| format!("{:.3}", level.mean_bandwidth))
            .collect();
        out.push_str(&format!(
            "| {name} | {} | {:.3} |\n",
            cells.join(" | "),
            report.expected_bandwidth
        ));
        if report.per_class_decay.is_some() {
            kclass_decay = report.per_class_decay;
        }
    }
    out.push_str(
        "\nThe crossbar row is flat (no buses to lose); the full connection \
         degrades gracefully, losing one bus' worth of service per failure; \
         single and partial connections also strand the memories behind each \
         dead bus.\n\n",
    );
    out.push_str(
        "Per-class bandwidth of the K-class network under worst-case \
         (lowest-bus-first) failures — class C_j dies after exactly \
         j + B − K failures, higher classes degrade gracefully:\n\n",
    );
    if let Some(decay) = kclass_decay {
        let classes = decay.first().map(Vec::len).unwrap_or(0);
        out.push_str("| f |");
        for c in 0..classes {
            out.push_str(&format!(" C{} |", c + 1));
        }
        out.push_str("\n|---|");
        for _ in 0..classes {
            out.push_str("----|");
        }
        out.push('\n');
        for (f, row) in decay.iter().enumerate() {
            out.push_str(&format!("| {f} |"));
            for &bw in row {
                out.push_str(&format!(" {bw:.3} |"));
            }
            out.push('\n');
        }
    }
    out.push_str(
        "\nAnalytical degraded bandwidth is cross-validated against the \
         fault-injecting simulator in `tests/degraded_faults.rs` and by \
         `mbus faults --check`.\n",
    );
    Ok(out)
}

/// `mbus sweep`: CSV series of bandwidth over bus counts for every scheme.
pub fn sweep(args: &Args) -> Result<(), String> {
    let n = args.get_or("n", 16usize)?;
    let rate = args.get_or("rate", 1.0f64)?;
    let matrix = workload_from(args, n, n)?;
    println!("scheme,n,r,buses,bandwidth");
    let bus_counts: Vec<usize> = (1..=n).collect();
    /// Builds the scheme to sweep at a given bus count, or `None` to skip.
    type SchemeAt = Box<dyn Fn(usize) -> Option<ConnectionScheme>>;
    let schemes: Vec<(&str, SchemeAt)> = vec![
        ("full", Box::new(|_| Some(ConnectionScheme::Full))),
        (
            "single",
            Box::new(move |b| ConnectionScheme::balanced_single(n, b).ok()),
        ),
        (
            "partial_g2",
            Box::new(|b| (b % 2 == 0).then_some(ConnectionScheme::PartialGroups { groups: 2 })),
        ),
        (
            "kclass_kb",
            Box::new(move |b| ConnectionScheme::uniform_classes(n, b).ok()),
        ),
        ("crossbar", Box::new(|_| Some(ConnectionScheme::Crossbar))),
    ];
    for (name, factory) in schemes {
        for &b in &bus_counts {
            let Some(scheme) = factory(b) else { continue };
            let Ok(net) = BusNetwork::new(n, n, b, scheme) else {
                continue;
            };
            let bw = memory_bandwidth(&net, &matrix, rate).map_err(|e| e.to_string())?;
            println!("{name},{n},{rate},{b},{bw:.6}");
        }
    }
    Ok(())
}

/// `mbus validate`.
pub fn validate(args: &Args) -> Result<(), String> {
    let n = args.get_or("n", 8usize)?;
    let cycles = args.get_or("cycles", 200_000u64)?;
    println!("analysis vs exact vs simulation, N = {n}, hierarchical r = 1.0\n");
    println!("| scheme | B | analytic | exact | simulated | an-err% | sim-err% |");
    println!("|---|---|---|---|---|---|---|");
    let model = mbus_core::paper_params::hierarchical(n).map_err(|e| e.to_string())?;
    let b = n / 2;
    let schemes: Vec<(&str, ConnectionScheme)> = vec![
        ("full", ConnectionScheme::Full),
        (
            "single",
            ConnectionScheme::balanced_single(n, b).map_err(|e| e.to_string())?,
        ),
        ("partial g=2", ConnectionScheme::PartialGroups { groups: 2 }),
        (
            "kclass K=B",
            ConnectionScheme::uniform_classes(n, b).map_err(|e| e.to_string())?,
        ),
        ("crossbar", ConnectionScheme::Crossbar),
    ];
    for (name, scheme) in schemes {
        let net = BusNetwork::new(n, n, b, scheme).map_err(|e| e.to_string())?;
        let system = System::new(net, &model, 1.0).map_err(|e| e.to_string())?;
        let analytic = system.analytic().map_err(|e| e.to_string())?.bandwidth;
        let exact = system.exact().map_err(|e| e.to_string())?;
        let sim = system
            .simulate(
                &SimConfig::new(cycles)
                    .with_warmup(cycles / 20)
                    .with_seed(17),
            )
            .map_err(|e| e.to_string())?
            .bandwidth
            .mean();
        println!(
            "| {name} | {b} | {analytic:.4} | {exact:.4} | {sim:.4} | {:+.2} | {:+.2} |",
            100.0 * (analytic - exact) / exact,
            100.0 * (sim - exact) / exact,
        );
    }
    Ok(())
}

/// `mbus experiments`: the full EXPERIMENTS.md body.
pub fn experiments() -> Result<(), String> {
    println!("# EXPERIMENTS — paper vs computed\n");
    println!(
        "Every value below is regenerated by this repository \
         (`mbus experiments`). Computed values come from the analytical \
         models; paper values are the printed tables. `(–)` marks cells \
         illegible in the source scan — regenerated but not asserted.\n"
    );
    let rows = tables::table1(16, 8, 2, 8).map_err(|e| e.to_string())?;
    println!("{}", cost_table_markdown(&rows));
    println!("(Table I instantiated at N = 16, B = 8, g = 2, K = 8.)\n");
    for table in tables::all_bandwidth_tables() {
        print!("{}", table.to_markdown());
        println!(
            "**Fidelity:** max |computed − paper| over {} legible cells = {:.4} \
             (print precision is 0.01).\n",
            table.reference_cell_count(),
            table.max_abs_deviation()
        );
    }
    println!("## Section IV ratios\n");
    println!("| quantity | computed | paper |");
    println!("|---|---|---|");
    let ratios = tables::bus_halving_ratios();
    println!(
        "| halving ratio, hier, r=1.0 | {:.3} | \"almost 1.6\" |",
        ratios[0].1
    );
    println!(
        "| halving ratio, unif, r=1.0 | {:.3} | \"nearly 1.5\" |",
        ratios[0].2
    );
    println!("| halving ratio, hier, r=0.5 | {:.3} | 1.28 |", ratios[1].1);
    println!("| halving ratio, unif, r=0.5 | {:.3} | 1.2 |", ratios[1].2);

    println!("\n## Beyond the paper: independence-approximation error\n");
    println!(
        "The paper's bus-interference analysis treats per-memory request \
         indicators as independent. Exact references (enumeration and \
         inclusion-exclusion) quantify the error:\n"
    );
    println!("| scheme (N=8, B=4, hier, r=1) | approximate | exact | rel. error |");
    println!("|---|---|---|---|");
    let model = mbus_core::paper_params::hierarchical(8).map_err(|e| e.to_string())?;
    let report =
        exact::compare::all_schemes_error_report(8, 4, &model, 1.0).map_err(|e| e.to_string())?;
    for (scheme, row) in report {
        println!(
            "| {scheme} | {:.4} | {:.4} | {:+.2}% |",
            row.approximate,
            row.exact,
            100.0 * row.relative_error
        );
    }
    println!(
        "\nThe single-connection row peaks near −6%: the balanced placement \
         aligns whole clusters with buses, which the independence \
         approximation underestimates."
    );

    println!("\n## Beyond the paper: single-connection memory placement\n");
    println!(
        "Table IV fixes only \"N/B modules per bus\"; the assignment is a \
         free design choice the paper does not explore. Under hierarchical \
         traffic it matters (N = 8, B = 4, r = 1):\n"
    );
    println!("| placement | eq (6) approximation | exact bandwidth |");
    println!("|---|---|---|");
    for (name, row) in
        exact::compare::single_placement_report(8, 4, &model, 1.0).map_err(|e| e.to_string())?
    {
        println!("| {name} | {:.4} | {:.4} |", row.approximate, row.exact);
    }
    println!(
        "\nAligning clusters with buses *helps* (a cluster's 0.9 aggregate \
         share keeps its bus busy); the paper's formula cannot see the \
         difference."
    );

    println!("\n## Beyond the paper: resubmission semantics (exact Markov chain)\n");
    println!(
        "Relaxing assumption 5 (blocked requests retry instead of being \
         dropped), solved exactly for a 3x3x1 full-connection system under \
         uniform traffic and validated against the simulator:\n"
    );
    println!("| r | throughput | mean wait (cycles) |");
    println!("|---|---|---|");
    let matrix = mbus_core::workload::UniformModel::new(3, 3)
        .map_err(|e| e.to_string())?
        .matrix();
    let net = BusNetwork::new(3, 3, 1, ConnectionScheme::Full).map_err(|e| e.to_string())?;
    for r in [0.2, 0.5, 0.8, 1.0] {
        let ss = exact::markov::resubmission_steady_state(&net, &matrix, r)
            .map_err(|e| e.to_string())?;
        println!("| {r} | {:.4} | {:.4} |", ss.throughput, ss.mean_wait);
    }

    println!("\n## Beyond the paper: NxMxB shared-leaf hierarchy\n");
    println!(
        "The paper sketches the N x M x B variant (k_n' favorite memories \
         per leaf) but only evaluates N x N x B. A 12x8xB sweep with \
         k = (2,2,3), k3' = 2, shares 0.6/0.3/0.1, r = 1:\n"
    );
    println!("| scheme | B=2 | B=4 | B=8 |");
    println!("|---|---|---|---|");
    let rows = tables::extension_nm_table();
    for scheme in ["full", "single", "partial g=2", "kclass K=2"] {
        let by_b = |b: usize| {
            rows.iter()
                .find(|(s, bb, _)| s == scheme && *bb == b)
                .map(|(_, _, bw)| format!("{bw:.3}"))
                .unwrap_or_default()
        };
        println!("| {scheme} | {} | {} | {} |", by_b(2), by_b(4), by_b(8));
    }
    println!(
        "\nNote the K = 2 row at B = 8: the paper's two-step bus assignment \
         routes class C_j only downward from bus j+B-K, so with small \
         classes the low buses are unreachable (here classes of 4 modules \
         spill at most to bus 4, leaving buses 1-3 permanently idle and \
         capping service at 5 of 8 buses). This is faithful to equation \
         (12) — a real limitation of the proposed procedure when K << B."
    );

    println!("\n## Beyond the paper: locality depth (n-level hierarchies)\n");
    println!(
        "The paper defines the model for any n but evaluates only n = 2. \
         Holding the remote share at 0.1 and deepening the hierarchy of a \
         16-processor machine (full connection, r = 1):\n"
    );
    println!("| workload | B=12 | B=16 (crossbar-like) |");
    println!("|---|---|---|");
    let configs: Vec<(&str, RequestMatrix)> = vec![
        (
            "uniform",
            mbus_core::workload::UniformModel::new(16, 16)
                .map_err(|e| e.to_string())?
                .matrix(),
        ),
        (
            "2-level k=(4,4), shares .6/.3/.1",
            mbus_core::paper_params::hierarchical(16)
                .map_err(|e| e.to_string())?
                .matrix(),
        ),
        ("3-level k=(2,2,4), shares .6/.2/.1/.1", {
            let h =
                mbus_core::workload::Hierarchy::paired(&[2, 2, 4]).map_err(|e| e.to_string())?;
            mbus_core::workload::HierarchicalModel::with_aggregate_shares(h, &[0.6, 0.2, 0.1, 0.1])
                .map_err(|e| e.to_string())?
                .matrix()
        }),
    ];
    for (name, matrix) in &configs {
        let bw = |b: usize| -> Result<f64, String> {
            let net =
                BusNetwork::new(16, 16, b, ConnectionScheme::Full).map_err(|e| e.to_string())?;
            memory_bandwidth(&net, matrix, 1.0).map_err(|e| e.to_string())
        };
        println!("| {name} | {:.3} | {:.3} |", bw(12)?, bw(16)?);
    }
    println!(
        "\nWith the favorite share fixed at 0.6 the depth effect is small: \
         X is dominated by m0, so a third level buys only a second-decimal \
         improvement. The model's locality benefit comes almost entirely \
         from the favorite-memory share."
    );

    println!("\n## Beyond the paper: per-processor fairness of the K-class network\n");
    println!(
        "The paper discusses per-class fault tolerance but not its flip \
         side: under hierarchical traffic a processor's favorite memory \
         lives in one class, so class connectivity becomes *processor* \
         throughput (8x8x4, K = 4, hier, r = 1, 200k simulated cycles):\n"
    );
    {
        let n = 8;
        let b = 4;
        let matrix = mbus_core::paper_params::hierarchical(n)
            .map_err(|e| e.to_string())?
            .matrix();
        let rows: Vec<(&str, ConnectionScheme)> = vec![
            ("full", ConnectionScheme::Full),
            (
                "kclass K=4",
                ConnectionScheme::uniform_classes(n, b).map_err(|e| e.to_string())?,
            ),
        ];
        println!("| scheme | Jain fairness | per-processor completions/cycle |");
        println!("|---|---|---|");
        for (name, scheme) in rows {
            let net = BusNetwork::new(n, n, b, scheme).map_err(|e| e.to_string())?;
            let mut sim = Simulator::build(&net, &matrix, 1.0).map_err(|e| e.to_string())?;
            let report = sim
                .run(&SimConfig::new(200_000).with_warmup(5_000).with_seed(41))
                .map_err(|e| e.to_string())?;
            let rates: Vec<String> = report
                .processor_service_rates
                .iter()
                .map(|x| format!("{x:.2}"))
                .collect();
            println!(
                "| {name} | {:.4} | [{}] |",
                report.processor_fairness(),
                rates.join(", ")
            );
        }
    }
    println!(
        "\nProcessors whose favorites sit in class C_1 (one bus) complete \
         ~40% fewer requests than those in class C_4 — the cost of tunable \
         per-class fault tolerance."
    );
    print!("{}", degraded_section()?);
    Ok(())
}

/// `mbus lint`: run the workspace static-analysis pass (`mbus-lint`).
///
/// Prints every violation (`--json` for machine output, `--sarif` for CI
/// code-scanning upload, `--unsafe-report` for the unsafe-code inventory)
/// and fails with a non-zero exit status when the workspace is not clean.
pub fn lint(args: &Args) -> Result<(), String> {
    let root = match args.get("root") {
        Some(path) => std::path::PathBuf::from(path),
        None => find_workspace_root()?,
    };
    let report = mbus_lint::lint_workspace(&root).map_err(|e| e.to_string())?;
    if report.files_scanned == 0 {
        return Err(format!(
            "no Rust sources found under {}; is --root pointing at the workspace?",
            root.display()
        ));
    }
    if args.flag("unsafe-report") {
        print!("{}", mbus_lint::render_unsafe_report(&report));
        return Ok(());
    }
    if args.flag("sarif") {
        print!("{}", mbus_lint::render_sarif(&report));
    } else if args.flag("json") {
        print!("{}", mbus_lint::render_json(&report));
    } else {
        print!("{}", mbus_lint::render_human(&report));
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} lint violation(s)", report.violations.len()))
    }
}

/// Walks upward from the current directory to the workspace root (the
/// first directory holding both `Cargo.toml` and `crates/`).
fn find_workspace_root() -> Result<std::path::PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(
                "could not locate the workspace root (a directory with both \
                 Cargo.toml and crates/); pass --root <path>"
                    .to_owned(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn scheme_parsing_happy_paths() {
        let a = args("analyze");
        assert_eq!(scheme_from(&a, 8, 4).unwrap(), ConnectionScheme::Full);
        let a = args("analyze --scheme partial --groups 2");
        assert_eq!(
            scheme_from(&a, 8, 4).unwrap(),
            ConnectionScheme::PartialGroups { groups: 2 }
        );
        let a = args("analyze --scheme kclass --classes 2");
        assert!(matches!(
            scheme_from(&a, 8, 4).unwrap(),
            ConnectionScheme::KClasses { .. }
        ));
        let a = args("analyze --scheme single");
        assert!(matches!(
            scheme_from(&a, 8, 4).unwrap(),
            ConnectionScheme::Single { .. }
        ));
        let a = args("analyze --scheme crossbar");
        assert_eq!(scheme_from(&a, 8, 4).unwrap(), ConnectionScheme::Crossbar);
    }

    #[test]
    fn scheme_parsing_errors() {
        let a = args("analyze --scheme warp-drive");
        assert!(scheme_from(&a, 8, 4)
            .unwrap_err()
            .contains("unknown scheme"));
        // Single with more buses than memories fails in the builder.
        let a = args("analyze --scheme single");
        assert!(scheme_from(&a, 2, 4).is_err());
    }

    #[test]
    fn workload_parsing() {
        let a = args("analyze");
        let m = workload_from(&a, 8, 8).unwrap();
        assert!(
            (m.prob(0, 0) - 0.6).abs() < 1e-12,
            "defaults to hierarchical"
        );
        let a = args("analyze --workload uniform");
        let m = workload_from(&a, 8, 8).unwrap();
        assert_eq!(m.prob(0, 0), 0.125);
        let a = args("analyze --workload favorite --alpha 0.9");
        let m = workload_from(&a, 8, 8).unwrap();
        assert_eq!(m.prob(3, 3), 0.9);
        // Hierarchical requires N = M.
        let a = args("analyze --workload hier");
        assert!(workload_from(&a, 8, 4).is_err());
        let a = args("analyze --workload astrology");
        assert!(workload_from(&a, 8, 8).is_err());
    }

    #[test]
    fn fault_spec_parsing() {
        let schedule = parse_faults("2@100,3@200", 1_000).unwrap();
        assert_eq!(schedule.len(), 2);
        assert_eq!(schedule.events()[0].bus, 2);
        assert_eq!(schedule.events()[1].cycle, 200);
        assert!(parse_faults("2-100", 1_000).is_err());
        assert!(parse_faults("x@100", 1_000).is_err());
        assert!(parse_faults("2@100", 50).is_err(), "beyond run length");
        // The run spans cycles 0..total: an event at exactly `total`
        // (= cycles + warmup at the call sites) never takes effect.
        assert!(parse_faults("2@1000", 1_000).is_err(), "at run end");
        assert!(parse_faults("2@999", 1_000).is_ok(), "last cycle is fine");
    }

    #[test]
    fn fault_window_parsing() {
        use mbus_core::sim::FaultEventKind;
        let schedule = parse_faults("1@100-500", 1_000).unwrap();
        assert_eq!(schedule.len(), 2);
        assert_eq!(
            (schedule.events()[0].cycle, schedule.events()[0].kind),
            (100, FaultEventKind::Fail)
        );
        assert_eq!(
            (schedule.events()[1].cycle, schedule.events()[1].kind),
            (500, FaultEventKind::Repair)
        );
        // A window given after a permanent failure of another bus parses
        // into a sorted schedule even though the repair precedes the fail
        // in input order.
        let schedule = parse_faults("3@800,1@100-500", 1_000).unwrap();
        assert_eq!(schedule.len(), 3);
        assert!(schedule
            .events()
            .windows(2)
            .all(|w| w[0].cycle <= w[1].cycle));
        // Degenerate or reversed windows and out-of-run ends are rejected.
        assert!(parse_faults("1@500-500", 1_000).is_err(), "empty window");
        assert!(parse_faults("1@500-100", 1_000).is_err(), "reversed");
        assert!(parse_faults("1@100-1000", 1_000).is_err(), "end at run end");
        // A same-cycle Fail + Repair of one bus is ambiguous -> schedule
        // construction rejects it (deterministic same-cycle rule).
        assert!(parse_faults("1@100-200,1@200", 1_000).is_err());
    }

    #[test]
    fn campaign_config_parsing() {
        let config = campaign_config_from(&args("faults")).unwrap();
        assert_eq!(config, mbus_core::campaign::CampaignConfig::default());
        let config = campaign_config_from(&args(
            "faults --max-failures 2 --samples 64 --limit 100 --seed 9 --workers 3 --q 0.1",
        ))
        .unwrap();
        assert_eq!(config.max_failures, Some(2));
        assert_eq!(config.samples, 64);
        assert_eq!(config.exhaustive_limit, 100);
        assert_eq!(config.seed, 9);
        assert_eq!(config.workers, 3);
        assert_eq!(config.bus_failure_prob, 0.1);
        assert!(campaign_config_from(&args("faults --max-failures x")).is_err());
    }

    #[test]
    fn network_from_round_trip() {
        let a = args("analyze --n 16 --b 8 --scheme partial --rate 0.5");
        let (net, matrix, rate) = network_from(&a).unwrap();
        assert_eq!(net.processors(), 16);
        assert_eq!(net.buses(), 8);
        assert_eq!(matrix.processors(), 16);
        assert_eq!(rate, 0.5);
    }

    #[test]
    fn render_supports_n_not_equal_m() {
        // The paper's Fig. 3 shape must render without a workload flag.
        assert!(render(&args(
            "render --scheme kclass --n 3 --m 6 --b 4 --classes 3"
        ))
        .is_ok());
    }

    #[test]
    fn table_command_validates_id() {
        assert!(table(&args("table 9")).is_err());
        assert!(table(&args("table")).is_err());
    }
}
