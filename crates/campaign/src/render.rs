//! Text renderers for [`CampaignReport`]: a markdown degradation table for
//! reports/EXPERIMENTS.md and a hand-rolled JSON document (the workspace
//! carries no JSON dependency).

use crate::CampaignReport;

/// Escapes the two characters JSON strings cannot carry raw. Scheme names
/// are ASCII words, but the renderer should not rely on that.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_mask(mask: &[usize]) -> String {
    if mask.is_empty() {
        "—".to_owned()
    } else {
        mask.iter()
            .map(|bus| bus.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Renders the campaign as a markdown section: the per-level degradation
/// table, the availability-weighted summary line, and (for K-class
/// networks) the per-class decay table.
pub fn render_markdown(report: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Scheme: {} — N = {}, M = {}, B = {}, r = {}\n\n",
        report.scheme, report.processors, report.memories, report.buses, report.rate
    ));
    out.push_str(
        "| f | combos | mode | mean BW | min BW | max BW | mean reach | min reach |\n\
         |---|--------|------|---------|--------|--------|------------|-----------|\n",
    );
    for level in &report.levels {
        out.push_str(&format!(
            "| {} | {} | {} | {:.4} | {:.4} | {:.4} | {:.3} | {:.3} |\n",
            level.failures,
            level.combos_evaluated,
            if level.exhaustive { "exact" } else { "sampled" },
            level.mean_bandwidth,
            level.min_bandwidth,
            level.max_bandwidth,
            level.mean_accessible_fraction,
            level.min_accessible_fraction,
        ));
    }
    out.push_str(&format!(
        "\nHealthy bandwidth {:.4}; availability-weighted expected bandwidth \
         {:.4} at per-bus failure probability q = {} ({:.1}% of healthy).\n",
        report.healthy_bandwidth,
        report.expected_bandwidth,
        report.bus_failure_prob,
        if report.healthy_bandwidth > 0.0 {
            100.0 * report.expected_bandwidth / report.healthy_bandwidth
        } else {
            0.0
        },
    ));
    if let Some(worst) = report.levels.iter().rev().find(|level| level.failures > 0) {
        out.push_str(&format!(
            "Worst observed mask at f = {}: buses {{{}}} → bandwidth {:.4}.\n",
            worst.failures,
            fmt_mask(&worst.worst_mask),
            worst.min_bandwidth,
        ));
    }
    if let Some(decay) = &report.per_class_decay {
        let classes = decay.first().map_or(0, Vec::len);
        out.push_str("\nPer-class bandwidth under worst-case (lowest-bus-first) failures:\n\n");
        out.push_str("| f |");
        for c in 0..classes {
            out.push_str(&format!(" C{} |", c + 1));
        }
        out.push_str("\n|---|");
        for _ in 0..classes {
            out.push_str("----|");
        }
        out.push('\n');
        for (f, row) in decay.iter().enumerate() {
            out.push_str(&format!("| {f} |"));
            for &bw in row {
                out.push_str(&format!(" {bw:.4} |"));
            }
            out.push('\n');
        }
    }
    out
}

/// Renders the campaign as a JSON document.
pub fn render_json(report: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"scheme\": \"{}\",\n  \"processors\": {},\n  \"memories\": {},\n  \
         \"buses\": {},\n  \"rate\": {},\n  \"bus_failure_prob\": {},\n  \
         \"healthy_bandwidth\": {:.6},\n  \"expected_bandwidth\": {:.6},\n",
        json_escape(&report.scheme),
        report.processors,
        report.memories,
        report.buses,
        report.rate,
        report.bus_failure_prob,
        report.healthy_bandwidth,
        report.expected_bandwidth,
    ));
    out.push_str("  \"levels\": [\n");
    for (i, level) in report.levels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"failures\": {}, \"combos_evaluated\": {}, \"exhaustive\": {}, \
             \"mean_bandwidth\": {:.6}, \"min_bandwidth\": {:.6}, \"max_bandwidth\": {:.6}, \
             \"mean_accessible_fraction\": {:.6}, \"min_accessible_fraction\": {:.6}, \
             \"worst_mask\": [{}]}}{}\n",
            level.failures,
            level.combos_evaluated,
            level.exhaustive,
            level.mean_bandwidth,
            level.min_bandwidth,
            level.max_bandwidth,
            level.mean_accessible_fraction,
            level.min_accessible_fraction,
            level
                .worst_mask
                .iter()
                .map(|bus| bus.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 == report.levels.len() {
                ""
            } else {
                ","
            },
        ));
    }
    out.push_str("  ]");
    if let Some(decay) = &report.per_class_decay {
        out.push_str(",\n  \"per_class_decay\": [\n");
        for (f, row) in decay.iter().enumerate() {
            out.push_str(&format!(
                "    [{}]{}\n",
                row.iter()
                    .map(|bw| format!("{bw:.6}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                if f + 1 == decay.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]");
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailureLevelSummary;

    fn sample_report(per_class: bool) -> CampaignReport {
        CampaignReport {
            scheme: "full bus-memory connection".to_owned(),
            processors: 8,
            memories: 8,
            buses: 2,
            rate: 1.0,
            bus_failure_prob: 0.05,
            healthy_bandwidth: 2.0,
            levels: vec![
                FailureLevelSummary {
                    failures: 0,
                    combos_evaluated: 1,
                    exhaustive: true,
                    mean_bandwidth: 2.0,
                    min_bandwidth: 2.0,
                    max_bandwidth: 2.0,
                    mean_accessible_fraction: 1.0,
                    min_accessible_fraction: 1.0,
                    worst_mask: vec![],
                },
                FailureLevelSummary {
                    failures: 1,
                    combos_evaluated: 2,
                    exhaustive: true,
                    mean_bandwidth: 1.0,
                    min_bandwidth: 0.9,
                    max_bandwidth: 1.1,
                    mean_accessible_fraction: 0.5,
                    min_accessible_fraction: 0.5,
                    worst_mask: vec![1],
                },
            ],
            expected_bandwidth: 1.9,
            per_class_decay: per_class.then(|| vec![vec![0.5, 0.7], vec![0.0, 0.6]]),
        }
    }

    #[test]
    fn markdown_has_one_row_per_level() {
        let md = render_markdown(&sample_report(false));
        assert!(md.contains("| 0 | 1 | exact | 2.0000 |"));
        assert!(md.contains("| 1 | 2 | exact | 1.0000 | 0.9000 | 1.1000 |"));
        assert!(md.contains("Worst observed mask at f = 1: buses {1}"));
        assert!(md.contains("95.0% of healthy"));
        assert!(!md.contains("Per-class"));
    }

    #[test]
    fn markdown_renders_class_decay_table() {
        let md = render_markdown(&sample_report(true));
        assert!(md.contains("| f | C1 | C2 |"));
        assert!(md.contains("| 1 | 0.0000 | 0.6000 |"));
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let json = render_json(&sample_report(true));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"expected_bandwidth\": 1.900000"));
        assert!(json.contains("\"worst_mask\": [1]"));
        assert!(json.contains("\"per_class_decay\""));
        let no_decay = render_json(&sample_report(false));
        assert!(!no_decay.contains("per_class_decay"));
    }
}
