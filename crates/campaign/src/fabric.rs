//! Fabric fault campaign: degraded-mode sweeps that fail **uplinks**.
//!
//! The flat campaign grades a single bus pool; a hierarchical fabric's
//! availability story is dominated by its uplinks — each one is the sole
//! escape path of a whole subtree, so an uplink failure severs every
//! cross-cluster flow through it while the cluster's *local* traffic keeps
//! flowing. This module sweeps `f`-uplink failure combinations through
//! [`mbus_fabric::analyze_fabric`] (exhaustively while `C(U, f)` is small,
//! seeded Monte-Carlo beyond [`CampaignConfig::exhaustive_limit`]) and
//! aggregates the same mean/min/max bandwidth summaries as the flat sweep,
//! plus the unreachable-rate mass those severed routes shed.
//!
//! Two fabric-specific artifacts come out:
//!
//! * the **availability-weighted expected bandwidth**
//!   `Σ_f C(U,f)·q^f·(1−q)^(U−f) · mean_bw(f)` for a per-uplink failure
//!   probability `q` — the long-run bandwidth of a fabric whose uplinks
//!   are each up with probability `1 − q`;
//! * a **per-cluster decay table**: under worst-case lowest-uplink-first
//!   failures, each leaf cluster's delivered rate per failure count. At
//!   locality 0 this is a death law (cluster `i` stops delivering once its
//!   uplink is down); at higher locality it shows the graceful floor local
//!   traffic provides.

use crate::{CampaignConfig, CampaignError};
use mbus_fabric::{analyze_fabric, ClusteredBuses, FabricTopology, LinkId, LinkKind};
use mbus_stats::prob::{choose, choose_f64};
use mbus_workload::RequestMatrix;
use serde::{Deserialize, Serialize};

/// Aggregates of one uplink-failure level (a fixed failure count `f`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricFailureLevel {
    /// Number of failed uplinks at this level.
    pub failures: usize,
    /// Masks evaluated at this level.
    pub combos_evaluated: usize,
    /// Whether every `C(U, f)` combination was evaluated (vs sampled).
    pub exhaustive: bool,
    /// Mean delivered bandwidth over the evaluated masks.
    pub mean_bandwidth: f64,
    /// Worst-case bandwidth over the evaluated masks.
    pub min_bandwidth: f64,
    /// Best-case bandwidth over the evaluated masks.
    pub max_bandwidth: f64,
    /// Mean offered rate dropped at issue because its route is severed.
    pub mean_unreachable: f64,
    /// Worst-case unreachable rate over the evaluated masks.
    pub max_unreachable: f64,
    /// The failed uplink link ids of the minimum-bandwidth mask.
    pub worst_mask: Vec<LinkId>,
}

/// The full result of a fabric uplink-failure campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricCampaignReport {
    /// Branching factors of the cluster tree.
    pub ks: Vec<usize>,
    /// Processor (= memory) count.
    pub processors: usize,
    /// Total links (local groups + uplinks).
    pub links: usize,
    /// Uplinks subject to failure.
    pub uplinks: usize,
    /// Request rate `r`.
    pub rate: f64,
    /// Per-uplink failure probability `q` used for availability weighting.
    pub uplink_failure_prob: f64,
    /// Healthy (no-failure) analytic bandwidth.
    pub healthy_bandwidth: f64,
    /// One summary per uplink-failure count, `f = 0` first.
    pub levels: Vec<FabricFailureLevel>,
    /// Availability-weighted expected bandwidth
    /// `Σ_f C(U,f)·q^f·(1−q)^(U−f)·mean_bw(f)`; missing truncated tail
    /// counted as zero bandwidth, making this a lower bound.
    pub expected_bandwidth: f64,
    /// `cluster_decay[f][c]`: leaf cluster `c`'s delivered rate after the
    /// worst-case first `f` uplinks (lowest link id first) have failed.
    pub cluster_decay: Vec<Vec<f64>>,
}

/// Runs an uplink-failure campaign over `topo`: analytic degraded
/// bandwidth of every (or a sample of every) f-uplink combination for
/// `f = 0..=max_failures`, plus the worst-case per-cluster decay table.
///
/// [`CampaignConfig`] is reused from the flat campaign;
/// `bus_failure_prob` is read as the per-**uplink** failure probability
/// and `max_failures` counts uplinks (`None` = all of them). Depth-1
/// fabrics have no uplinks and yield a single healthy level.
///
/// # Errors
///
/// * invalid `config` → [`CampaignError::BadConfig`];
/// * analytic failures (dimension mismatch, bad rate) →
///   [`CampaignError::Fabric`].
pub fn run_fabric_campaign(
    topo: &ClusteredBuses,
    matrix: &RequestMatrix,
    rate: f64,
    config: &CampaignConfig,
) -> Result<FabricCampaignReport, CampaignError> {
    if config.samples == 0 || config.exhaustive_limit == 0 {
        return Err(CampaignError::BadConfig {
            reason: "samples and exhaustive_limit must be positive".into(),
        });
    }
    let q = config.uplink_failure_prob();
    if !q.is_finite() || !(0.0..=1.0).contains(&q) {
        return Err(CampaignError::BadConfig {
            reason: format!("uplink failure probability {q} outside [0, 1]"),
        });
    }
    let uplink_ids: Vec<LinkId> = topo
        .links()
        .iter()
        .enumerate()
        .filter(|(_, link)| matches!(link.kind, LinkKind::Uplink { .. }))
        .map(|(id, _)| id)
        .collect();
    let u = uplink_ids.len();
    let max_failures = config.max_failures.unwrap_or(u);
    if max_failures > u {
        return Err(CampaignError::BadConfig {
            reason: format!("max_failures {max_failures} exceeds uplink count {u}"),
        });
    }

    let mut levels = Vec::with_capacity(max_failures + 1);
    for f in 0..=max_failures {
        let count = choose(u as u64, f as u64);
        let exhaustive = matches!(count, Some(c) if c <= config.exhaustive_limit);
        let masks = if exhaustive {
            crate::all_combinations(u, f)
        } else {
            crate::sampled_combinations(u, f, config.samples, config.seed.wrapping_add(f as u64))
        };
        let n = masks.len();
        let mut mean_bw = 0.0;
        let mut min_bw = f64::INFINITY;
        let mut max_bw = f64::NEG_INFINITY;
        let mut mean_unreachable = 0.0;
        let mut max_unreachable: f64 = 0.0;
        let mut worst_mask = Vec::new();
        for mask in masks {
            let failed: Vec<LinkId> = mask.iter().map(|&i| uplink_ids[i]).collect();
            let analysis =
                analyze_fabric(topo, matrix, rate, &failed).map_err(CampaignError::Fabric)?;
            mean_bw += analysis.bandwidth;
            mean_unreachable += analysis.unreachable_rate;
            max_bw = max_bw.max(analysis.bandwidth);
            max_unreachable = max_unreachable.max(analysis.unreachable_rate);
            if analysis.bandwidth < min_bw {
                min_bw = analysis.bandwidth;
                worst_mask = failed;
            }
        }
        levels.push(FabricFailureLevel {
            failures: f,
            combos_evaluated: n,
            exhaustive,
            mean_bandwidth: mean_bw / n as f64,
            min_bandwidth: min_bw,
            max_bandwidth: max_bw,
            mean_unreachable: mean_unreachable / n as f64,
            max_unreachable,
            worst_mask,
        });
    }

    let expected_bandwidth = levels
        .iter()
        .map(|level| {
            let f = level.failures as u64;
            let weight =
                choose_f64(u as u64, f) * q.powi(f as i32) * (1.0 - q).powi((u as u64 - f) as i32);
            weight * level.mean_bandwidth
        })
        .sum();

    // Worst-case decay: fail the first f uplinks (lowest link id first) and
    // record every leaf cluster's delivered rate.
    let mut cluster_decay = Vec::with_capacity(max_failures + 1);
    for f in 0..=max_failures {
        let failed: Vec<LinkId> = uplink_ids[..f].to_vec();
        let analysis =
            analyze_fabric(topo, matrix, rate, &failed).map_err(CampaignError::Fabric)?;
        cluster_decay.push(analysis.cluster_bandwidth);
    }

    Ok(FabricCampaignReport {
        ks: topo.hierarchy().branching_factors().to_vec(),
        processors: topo.processors(),
        links: topo.links().len(),
        uplinks: u,
        rate,
        uplink_failure_prob: q,
        healthy_bandwidth: levels[0].mean_bandwidth,
        levels,
        expected_bandwidth,
        cluster_decay,
    })
}

/// Renders the fabric campaign as a markdown section.
pub fn render_fabric_markdown(report: &FabricCampaignReport) -> String {
    let ks = report
        .ks
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("x");
    let mut out = String::new();
    out.push_str(&format!(
        "Fabric {} — N = M = {}, {} links ({} uplinks), r = {}\n\n",
        ks, report.processors, report.links, report.uplinks, report.rate
    ));
    out.push_str(
        "| f | combos | mode | mean BW | min BW | max BW | mean unreach | max unreach |\n\
         |---|--------|------|---------|--------|--------|--------------|-------------|\n",
    );
    for level in &report.levels {
        out.push_str(&format!(
            "| {} | {} | {} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} |\n",
            level.failures,
            level.combos_evaluated,
            if level.exhaustive { "exact" } else { "sampled" },
            level.mean_bandwidth,
            level.min_bandwidth,
            level.max_bandwidth,
            level.mean_unreachable,
            level.max_unreachable,
        ));
    }
    out.push_str(&format!(
        "\nHealthy bandwidth {:.4}; availability-weighted expected bandwidth \
         {:.4} at per-uplink failure probability q = {} ({:.1}% of healthy).\n",
        report.healthy_bandwidth,
        report.expected_bandwidth,
        report.uplink_failure_prob,
        if report.healthy_bandwidth > 0.0 {
            100.0 * report.expected_bandwidth / report.healthy_bandwidth
        } else {
            0.0
        },
    ));
    if let Some(worst) = report.levels.iter().rev().find(|level| level.failures > 0) {
        let mask = worst
            .worst_mask
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "Worst observed mask at f = {}: links {{{mask}}} → bandwidth {:.4}.\n",
            worst.failures, worst.min_bandwidth,
        ));
    }
    let clusters = report.cluster_decay.first().map_or(0, Vec::len);
    if clusters > 0 && report.cluster_decay.len() > 1 {
        out.push_str(
            "\nPer-cluster delivered rate under worst-case (lowest-uplink-first) failures:\n\n",
        );
        out.push_str("| f |");
        for c in 0..clusters {
            out.push_str(&format!(" L{c} |"));
        }
        out.push_str("\n|---|");
        for _ in 0..clusters {
            out.push_str("----|");
        }
        out.push('\n');
        for (f, row) in report.cluster_decay.iter().enumerate() {
            out.push_str(&format!("| {f} |"));
            for bw in row {
                out.push_str(&format!(" {bw:.4} |"));
            }
            out.push('\n');
        }
    }
    out
}

/// Renders the fabric campaign as a hand-rolled JSON document.
pub fn render_fabric_json(report: &FabricCampaignReport) -> String {
    let num_list = |values: &[f64]| {
        values
            .iter()
            .map(|v| format!("{v:.6}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let int_list = |values: &[usize]| {
        values
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"ks\": [{}],\n", int_list(&report.ks)));
    out.push_str(&format!("  \"processors\": {},\n", report.processors));
    out.push_str(&format!("  \"links\": {},\n", report.links));
    out.push_str(&format!("  \"uplinks\": {},\n", report.uplinks));
    out.push_str(&format!("  \"rate\": {},\n", report.rate));
    out.push_str(&format!(
        "  \"uplink_failure_prob\": {},\n",
        report.uplink_failure_prob
    ));
    out.push_str(&format!(
        "  \"healthy_bandwidth\": {:.6},\n",
        report.healthy_bandwidth
    ));
    out.push_str(&format!(
        "  \"expected_bandwidth\": {:.6},\n",
        report.expected_bandwidth
    ));
    out.push_str("  \"levels\": [\n");
    for (i, level) in report.levels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"failures\": {}, \"combos\": {}, \"exhaustive\": {}, \
             \"mean_bandwidth\": {:.6}, \"min_bandwidth\": {:.6}, \
             \"max_bandwidth\": {:.6}, \"mean_unreachable\": {:.6}, \
             \"max_unreachable\": {:.6}, \"worst_mask\": [{}]}}{}\n",
            level.failures,
            level.combos_evaluated,
            level.exhaustive,
            level.mean_bandwidth,
            level.min_bandwidth,
            level.max_bandwidth,
            level.mean_unreachable,
            level.max_unreachable,
            int_list(&level.worst_mask),
            if i + 1 == report.levels.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"cluster_decay\": [\n");
    for (f, row) in report.cluster_decay.iter().enumerate() {
        out.push_str(&format!(
            "    [{}]{}\n",
            num_list(row),
            if f + 1 == report.cluster_decay.len() {
                ""
            } else {
                ","
            },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbus_fabric::FabricSpec;

    fn fabric(ks: &[usize], locality: f64) -> (ClusteredBuses, RequestMatrix) {
        FabricSpec {
            ks: ks.to_vec(),
            local_buses: 2,
            uplink_width: 1,
            locality,
        }
        .build()
        .unwrap()
    }

    #[test]
    fn uplink_levels_cover_all_combinations() {
        let (topo, matrix) = fabric(&[4, 4], 0.6);
        let report =
            run_fabric_campaign(&topo, &matrix, 0.5, &CampaignConfig::default()).unwrap();
        assert_eq!(report.uplinks, 4);
        assert_eq!(report.levels.len(), 5);
        // C(4, f) combos per level, all exhaustive at the default limit.
        for (f, expected) in [1usize, 4, 6, 4, 1].iter().enumerate() {
            assert_eq!(report.levels[f].combos_evaluated, *expected, "f={f}");
            assert!(report.levels[f].exhaustive);
        }
        // Unreachable mass grows with failures; at f = 0 nothing is severed.
        assert_eq!(report.levels[0].mean_unreachable, 0.0);
        for pair in report.levels.windows(2) {
            assert!(pair[0].mean_unreachable <= pair[1].mean_unreachable + 1e-12);
        }
        assert!(report.expected_bandwidth > 0.0);
    }

    #[test]
    fn pure_remote_fabric_obeys_the_uplink_death_law() {
        // Locality 0: every request crosses an uplink, so failing all
        // uplinks kills delivery entirely, and the worst-case decay table
        // zeroes cluster c once uplink c is down.
        let (topo, matrix) = fabric(&[4, 4], 0.0);
        let report =
            run_fabric_campaign(&topo, &matrix, 0.5, &CampaignConfig::default()).unwrap();
        let dead = report.levels.last().unwrap();
        assert!(dead.mean_bandwidth.abs() < 1e-12);
        assert!((dead.mean_unreachable - report.rate * 16.0).abs() < 1e-9);
        // Availability-weighted expectation sits strictly below healthy.
        assert!(report.expected_bandwidth < report.healthy_bandwidth);
        // Decay table: after f lowest-first uplink failures, clusters
        // 0..f deliver (and receive) nothing; a surviving cluster stays
        // alive only while it has a live *peer* to exchange with (all its
        // traffic is remote, so it needs at least one other live uplink).
        for (f, row) in report.cluster_decay.iter().enumerate() {
            for (c, &bw) in row.iter().enumerate() {
                if c < f || report.uplinks - f < 2 {
                    assert!(bw.abs() < 1e-12, "f={f} cluster {c} should be dead");
                } else {
                    assert!(bw > 0.0, "f={f} cluster {c} should be alive");
                }
            }
        }
    }

    #[test]
    fn depth_one_fabric_has_no_uplinks() {
        let (topo, matrix) = fabric(&[8], 1.0);
        let report =
            run_fabric_campaign(&topo, &matrix, 0.5, &CampaignConfig::default()).unwrap();
        assert_eq!(report.uplinks, 0);
        assert_eq!(report.levels.len(), 1);
        assert_eq!(report.expected_bandwidth, report.healthy_bandwidth);
    }

    #[test]
    fn bad_fabric_configs_are_rejected() {
        let (topo, matrix) = fabric(&[4, 4], 0.6);
        let config = CampaignConfig {
            max_failures: Some(5),
            ..CampaignConfig::default()
        };
        assert!(matches!(
            run_fabric_campaign(&topo, &matrix, 0.5, &config),
            Err(CampaignError::BadConfig { .. })
        ));
        assert!(matches!(
            run_fabric_campaign(&topo, &matrix, 1.5, &CampaignConfig::default()),
            Err(CampaignError::Fabric(_))
        ));
    }

    #[test]
    fn renderers_cover_the_report() {
        let (topo, matrix) = fabric(&[2, 2], 0.5);
        let report =
            run_fabric_campaign(&topo, &matrix, 0.8, &CampaignConfig::default()).unwrap();
        let md = render_fabric_markdown(&report);
        assert!(md.contains("Fabric 2x2"));
        assert!(md.contains("availability-weighted"));
        assert!(md.contains("Per-cluster delivered rate"));
        let json = render_fabric_json(&report);
        assert!(json.contains("\"uplinks\": 2"));
        assert!(json.contains("\"cluster_decay\""));
    }
}
