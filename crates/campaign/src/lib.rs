//! Fault-campaign engine: degraded-mode bandwidth over bus-failure
//! combinations.
//!
//! Table I of the paper grades every connection scheme by a symbolic
//! *degree* of fault tolerance. This crate turns that into numbers: for
//! each failure count `f` it evaluates the analytical degraded bandwidth
//! ([`mbus_analysis::degraded`]) over the `C(B, f)` ways `f` buses can
//! fail — exhaustively while the combination count is small, by seeded
//! Monte-Carlo sampling beyond [`CampaignConfig::exhaustive_limit`] — and
//! aggregates mean/min/max bandwidth, accessible-memory fractions, and the
//! worst-case mask per level. Mask evaluations run over the work-stealing
//! pool through [`mbus_stats::parallel::parallel_map_dynamic`] — level
//! costs are wildly uneven (`C(B, f)` peaks at `f = B/2`), exactly the
//! shape stealing flattens.
//!
//! For bus-permutation-symmetric schemes (full, crossbar) every bus is
//! interchangeable, so a degraded breakdown depends only on the failure
//! *count*, not on which buses failed. With
//! [`CampaignConfig::collapse_symmetry`] (the default) the campaign
//! memoizes one canonical evaluation per level — `B + 1` analytical calls
//! instead of `2^B` — through a per-run [`mbus_stats::cache::MemoCache`]
//! shared across the worker threads, while reporting the same per-mask
//! aggregates as the uncollapsed sweep.
//!
//! Given a per-bus failure probability `q`, the per-level means combine
//! into an **availability-weighted expected bandwidth**
//! `Σ_f C(B,f)·q^f·(1−q)^(B−f) · mean_bw(f)` — the long-run bandwidth of a
//! machine whose buses are each up with probability `1 − q`.
//!
//! For K-class networks the campaign additionally tabulates the per-class
//! decay under worst-case (lowest-bus-first) failures, exhibiting the
//! paper's claim that class `C_j` dies after exactly `j + B − K` failures
//! while higher classes degrade gracefully.
//!
//! [`cross_validate`] pins a single mask's analytical bandwidth against a
//! fault-scheduled simulation of the same mask, the loop the report's
//! credibility rests on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fabric;
mod render;

pub use fabric::{
    render_fabric_json, render_fabric_markdown, run_fabric_campaign, FabricCampaignReport,
    FabricFailureLevel,
};
pub use render::{render_json, render_markdown};

use mbus_analysis::degraded::{degraded_analyze, DegradedBreakdown};
use mbus_analysis::AnalysisError;
use mbus_sim::{FaultEvent, FaultEventKind, FaultSchedule, SimConfig, SimError, Simulator};
use mbus_stats::cache::MemoCache;
use mbus_stats::parallel::{available_workers, parallel_map_dynamic};
use mbus_stats::prob::{choose, choose_f64};
use mbus_topology::{BusNetwork, FaultMask, SchemeKind};
use mbus_workload::RequestMatrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Error type of the campaign engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CampaignError {
    /// A degraded-analysis evaluation failed.
    Analysis(AnalysisError),
    /// A cross-validation simulation failed.
    Sim(SimError),
    /// The campaign configuration is invalid.
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// An internal invariant of the campaign engine was violated — should
    /// never surface; reported instead of panicking.
    Internal {
        /// Human-readable reason.
        reason: String,
    },
    /// A fabric analytic evaluation failed (uplink-failure campaigns).
    Fabric(mbus_fabric::FabricError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Analysis(err) => write!(f, "analysis error: {err}"),
            Self::Sim(err) => write!(f, "simulation error: {err}"),
            Self::BadConfig { reason } => write!(f, "bad campaign config: {reason}"),
            Self::Internal { reason } => write!(f, "internal campaign error: {reason}"),
            Self::Fabric(err) => write!(f, "fabric error: {err}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Analysis(err) => Some(err),
            Self::Sim(err) => Some(err),
            Self::Fabric(err) => Some(err),
            Self::BadConfig { .. } | Self::Internal { .. } => None,
        }
    }
}

impl From<AnalysisError> for CampaignError {
    fn from(err: AnalysisError) -> Self {
        Self::Analysis(err)
    }
}

impl From<SimError> for CampaignError {
    fn from(err: SimError) -> Self {
        Self::Sim(err)
    }
}

/// Configuration of a fault campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Largest failure count to evaluate; `None` = all `B` buses.
    pub max_failures: Option<usize>,
    /// Evaluate a failure level exhaustively while `C(B, f)` is at most
    /// this; Monte-Carlo sample otherwise.
    pub exhaustive_limit: u128,
    /// Masks drawn per Monte-Carlo level.
    pub samples: usize,
    /// Seed of the Monte-Carlo mask draws (the campaign is deterministic
    /// for a fixed seed).
    pub seed: u64,
    /// Worker threads for the evaluation sweep; 0 = all available cores.
    pub workers: usize,
    /// Per-bus failure probability `q` for availability weighting.
    pub bus_failure_prob: f64,
    /// Collapse bus-permutation symmetry: on full/crossbar schemes every
    /// equal-`f` mask is equivalent, so each level is evaluated once via a
    /// canonical mask and memoized. Has no effect on asymmetric schemes.
    pub collapse_symmetry: bool,
}

impl CampaignConfig {
    /// The failure probability read as a per-**uplink** probability by the
    /// fabric campaign (same knob as [`CampaignConfig::bus_failure_prob`]:
    /// one field, interpreted against whichever resource pool is swept).
    pub fn uplink_failure_prob(&self) -> f64 {
        self.bus_failure_prob
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            max_failures: None,
            exhaustive_limit: 5_000,
            samples: 512,
            seed: 0x5eed,
            workers: 0,
            bus_failure_prob: 0.05,
            collapse_symmetry: true,
        }
    }
}

/// Aggregates of one failure level (a fixed failure count `f`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureLevelSummary {
    /// Number of failed buses at this level.
    pub failures: usize,
    /// Masks evaluated at this level.
    pub combos_evaluated: usize,
    /// Whether every `C(B, f)` combination was evaluated (vs sampled).
    pub exhaustive: bool,
    /// Mean bandwidth over the evaluated masks.
    pub mean_bandwidth: f64,
    /// Worst-case bandwidth over the evaluated masks.
    pub min_bandwidth: f64,
    /// Best-case bandwidth over the evaluated masks.
    pub max_bandwidth: f64,
    /// Mean fraction of memories still reachable.
    pub mean_accessible_fraction: f64,
    /// Worst-case fraction of memories still reachable.
    pub min_accessible_fraction: f64,
    /// The failed buses of the worst (minimum-bandwidth) evaluated mask.
    pub worst_mask: Vec<usize>,
}

/// The full result of a fault campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Scheme display name (e.g. "full bus-memory connection").
    pub scheme: String,
    /// Processor count.
    pub processors: usize,
    /// Memory-module count.
    pub memories: usize,
    /// Bus count.
    pub buses: usize,
    /// Request rate `r`.
    pub rate: f64,
    /// Per-bus failure probability `q` used for the availability weighting.
    pub bus_failure_prob: f64,
    /// Healthy (no-failure) bandwidth, for normalization.
    pub healthy_bandwidth: f64,
    /// One summary per failure count, `f = 0` first.
    pub levels: Vec<FailureLevelSummary>,
    /// Availability-weighted expected bandwidth
    /// `Σ_f C(B,f)·q^f·(1−q)^(B−f)·mean_bw(f)`. When
    /// [`CampaignConfig::max_failures`] truncates the levels, the missing
    /// tail is counted as zero bandwidth, making this a lower bound.
    pub expected_bandwidth: f64,
    /// For K-class networks: `per_class_decay[f][c]` is class `C_(c+1)`'s
    /// bandwidth after the *worst-case* `f` failures (lowest buses first).
    /// `None` for other schemes.
    pub per_class_decay: Option<Vec<Vec<f64>>>,
}

/// All `C(b, f)`-choose combinations, lexicographic. Only invoked when the
/// caller has bounded the count.
fn all_combinations(b: usize, f: usize) -> Vec<Vec<usize>> {
    if f == 0 {
        return vec![Vec::new()];
    }
    if f > b {
        return Vec::new();
    }
    let mut combos = Vec::new();
    let mut current: Vec<usize> = (0..f).collect();
    loop {
        combos.push(current.clone());
        // Advance to the next combination.
        let mut i = f;
        loop {
            if i == 0 {
                return combos;
            }
            i -= 1;
            if current[i] != i + b - f {
                break;
            }
            if i == 0 {
                return combos;
            }
        }
        current[i] += 1;
        for j in i + 1..f {
            current[j] = current[j - 1] + 1;
        }
    }
}

/// `samples` sorted f-subsets of `0..b`, drawn uniformly (independent
/// draws; duplicates across draws possible and harmless for a mean).
fn sampled_combinations(b: usize, f: usize, samples: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<usize> = (0..b).collect();
    (0..samples)
        .map(|_| {
            for i in 0..f {
                let j = rng.random_range(i..b);
                pool.swap(i, j);
            }
            let mut subset = pool[..f].to_vec();
            subset.sort_unstable();
            subset
        })
        .collect()
}

/// Runs a fault campaign: evaluates the analytical degraded bandwidth of
/// every (or a sample of every) f-bus failure combination for
/// `f = 0..=max_failures` and aggregates per-level summaries.
///
/// # Errors
///
/// * invalid `config` (zero samples / exhaustive limit, `q ∉ [0, 1]`,
///   `max_failures > B`) → [`CampaignError::BadConfig`];
/// * analysis failures (dimension mismatches, invalid rate, unsupported
///   scheme) → [`CampaignError::Analysis`].
pub fn run_campaign(
    net: &BusNetwork,
    matrix: &RequestMatrix,
    r: f64,
    config: &CampaignConfig,
) -> Result<CampaignReport, CampaignError> {
    let b = net.buses();
    if config.samples == 0 || config.exhaustive_limit == 0 {
        return Err(CampaignError::BadConfig {
            reason: "samples and exhaustive_limit must be positive".into(),
        });
    }
    let q = config.bus_failure_prob;
    if !q.is_finite() || !(0.0..=1.0).contains(&q) {
        return Err(CampaignError::BadConfig {
            reason: format!("bus failure probability {q} outside [0, 1]"),
        });
    }
    let max_failures = config.max_failures.unwrap_or(b);
    if max_failures > b {
        return Err(CampaignError::BadConfig {
            reason: format!("max_failures {max_failures} exceeds bus count {b}"),
        });
    }

    // Gather every mask to evaluate, tagged by level, and sweep them in one
    // parallel pass (flat work list → balanced chunks).
    let mut work: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut level_exhaustive = Vec::with_capacity(max_failures + 1);
    for f in 0..=max_failures {
        let count = choose(b as u64, f as u64);
        let exhaustive = matches!(count, Some(c) if c <= config.exhaustive_limit);
        let masks = if exhaustive {
            all_combinations(b, f)
        } else {
            sampled_combinations(b, f, config.samples, config.seed.wrapping_add(f as u64))
        };
        level_exhaustive.push(exhaustive);
        work.extend(masks.into_iter().map(|mask| (f, mask)));
    }

    let workers = if config.workers == 0 {
        available_workers()
    } else {
        config.workers
    };
    // Bus-permutation symmetry: on full/crossbar schemes any two equal-`f`
    // masks yield bit-identical breakdowns, so one canonical evaluation
    // (the lexicographically first mask `{0..f}` — also the first mask the
    // uncollapsed sweep sees, keeping `worst_mask` identical) serves every
    // `C(B, f)` combination. The memo cache is shared by all workers.
    let symmetric = config.collapse_symmetry
        && matches!(net.kind(), SchemeKind::Full | SchemeKind::Crossbar);
    let canonical: MemoCache<usize, Result<DegradedBreakdown, AnalysisError>> =
        MemoCache::new(1, b + 2);
    type Evaluated = Result<(usize, Vec<usize>, DegradedBreakdown), AnalysisError>;
    let evaluated: Vec<Evaluated> = parallel_map_dynamic(work, workers, |(f, failed)| {
        let breakdown = if symmetric {
            let shared = canonical.get_or_insert_with(f, || {
                let first: Vec<usize> = (0..f).collect();
                FaultMask::with_failures(b, &first)
                    .map_err(AnalysisError::from)
                    .and_then(|mask| degraded_analyze(net, matrix, r, &mask))
            });
            (*shared).clone()?
        } else {
            let mask = FaultMask::with_failures(b, &failed).map_err(AnalysisError::from)?;
            degraded_analyze(net, matrix, r, &mask)?
        };
        Ok((f, failed, breakdown))
    });

    let mut per_level: Vec<Vec<(Vec<usize>, DegradedBreakdown)>> =
        (0..=max_failures).map(|_| Vec::new()).collect();
    for item in evaluated {
        let (f, failed, breakdown) = item?;
        per_level[f].push((failed, breakdown));
    }

    let mut levels = Vec::with_capacity(max_failures + 1);
    for (f, results) in per_level.iter().enumerate() {
        let n = results.len();
        debug_assert!(n > 0, "every level evaluates at least one mask");
        let mut mean_bw = 0.0;
        let mut mean_reach = 0.0;
        let mut min_bw = f64::INFINITY;
        let mut max_bw = f64::NEG_INFINITY;
        let mut min_reach = f64::INFINITY;
        let mut worst_mask = Vec::new();
        for (failed, breakdown) in results {
            mean_bw += breakdown.bandwidth;
            mean_reach += breakdown.accessible_fraction;
            max_bw = max_bw.max(breakdown.bandwidth);
            min_reach = min_reach.min(breakdown.accessible_fraction);
            if breakdown.bandwidth < min_bw {
                min_bw = breakdown.bandwidth;
                worst_mask = failed.clone();
            }
        }
        levels.push(FailureLevelSummary {
            failures: f,
            combos_evaluated: n,
            exhaustive: level_exhaustive[f],
            mean_bandwidth: mean_bw / n as f64,
            min_bandwidth: min_bw,
            max_bandwidth: max_bw,
            mean_accessible_fraction: mean_reach / n as f64,
            min_accessible_fraction: min_reach,
            worst_mask,
        });
    }

    let expected_bandwidth = levels
        .iter()
        .map(|level| {
            let f = level.failures as u64;
            let weight =
                choose_f64(b as u64, f) * q.powi(f as i32) * (1.0 - q).powi((b as u64 - f) as i32);
            weight * level.mean_bandwidth
        })
        .sum();

    let per_class_decay = if net.kind() == SchemeKind::KClasses {
        let mut decay = Vec::with_capacity(max_failures + 1);
        for f in 0..=max_failures {
            let failed: Vec<usize> = (0..f).collect();
            let mask = FaultMask::with_failures(b, &failed).map_err(AnalysisError::from)?;
            let breakdown = degraded_analyze(net, matrix, r, &mask)?;
            let Some(per_class) = breakdown.per_class_bandwidth else {
                return Err(CampaignError::Internal {
                    reason: "K-class analysis reported no per-class bandwidth".to_owned(),
                });
            };
            decay.push(per_class);
        }
        Some(decay)
    } else {
        None
    };

    Ok(CampaignReport {
        scheme: net.kind().to_string(),
        processors: net.processors(),
        memories: net.memories(),
        buses: b,
        rate: r,
        bus_failure_prob: q,
        healthy_bandwidth: levels[0].mean_bandwidth,
        levels,
        expected_bandwidth,
        per_class_decay,
    })
}

/// One analytical-vs-simulated comparison for a fixed mask.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossCheck {
    /// The failed buses.
    pub failed_buses: Vec<usize>,
    /// Analytical degraded bandwidth.
    pub analytical: f64,
    /// Simulated mean bandwidth under a cycle-0 failure schedule of the
    /// same buses.
    pub simulated: f64,
    /// Batch-means confidence half-width of the simulated mean.
    pub sim_half_width: f64,
    /// `analytical − simulated`.
    pub gap: f64,
}

/// Cross-validates the analytical degraded bandwidth of `mask` against a
/// simulation that fails the same buses at cycle 0.
///
/// # Errors
///
/// * analysis failures → [`CampaignError::Analysis`];
/// * simulator construction / schedule failures → [`CampaignError::Sim`].
pub fn cross_validate(
    net: &BusNetwork,
    matrix: &RequestMatrix,
    r: f64,
    mask: &FaultMask,
    cycles: u64,
    seed: u64,
) -> Result<CrossCheck, CampaignError> {
    let analytical = degraded_analyze(net, matrix, r, mask)?;
    let events: Vec<FaultEvent> = mask
        .iter_failed()
        .map(|bus| FaultEvent {
            cycle: 0,
            bus,
            kind: FaultEventKind::Fail,
        })
        .collect();
    let schedule = FaultSchedule::from_events(events)?;
    let config = SimConfig::new(cycles)
        .with_warmup(cycles / 20)
        .with_seed(seed)
        .with_faults(schedule);
    let report = Simulator::build(net, matrix, r)?.run(&config)?;
    let simulated = report.bandwidth.mean();
    Ok(CrossCheck {
        failed_buses: mask.iter_failed().collect(),
        analytical: analytical.bandwidth,
        simulated,
        sim_half_width: report.bandwidth.half_width(),
        gap: analytical.bandwidth - simulated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbus_topology::ConnectionScheme;
    use mbus_workload::{HierarchicalModel, RequestModel, UniformModel};

    fn hier_matrix(n: usize) -> RequestMatrix {
        HierarchicalModel::two_level_paired(n, 4, [0.6, 0.3, 0.1])
            .unwrap()
            .matrix()
    }

    #[test]
    fn combination_enumeration_is_complete_and_lexicographic() {
        let combos = all_combinations(5, 3);
        assert_eq!(combos.len(), 10);
        assert_eq!(combos[0], vec![0, 1, 2]);
        assert_eq!(combos[9], vec![2, 3, 4]);
        let mut seen = combos.clone();
        seen.dedup();
        assert_eq!(seen.len(), 10, "no duplicates");
        assert_eq!(all_combinations(4, 0), vec![Vec::<usize>::new()]);
        assert_eq!(all_combinations(3, 3), vec![vec![0, 1, 2]]);
        assert!(all_combinations(2, 3).is_empty());
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let a = sampled_combinations(16, 5, 50, 42);
        let b = sampled_combinations(16, 5, 50, 42);
        assert_eq!(a, b);
        for subset in &a {
            assert_eq!(subset.len(), 5);
            assert!(subset.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            assert!(subset.iter().all(|&bus| bus < 16));
        }
        assert_ne!(a, sampled_combinations(16, 5, 50, 43), "seed matters");
    }

    #[test]
    fn full_campaign_levels_are_monotone() {
        let n = 8;
        let b = 4;
        let net = BusNetwork::new(n, n, b, ConnectionScheme::Full).unwrap();
        let matrix = hier_matrix(n);
        let report = run_campaign(&net, &matrix, 1.0, &CampaignConfig::default()).unwrap();
        assert_eq!(report.levels.len(), b + 1);
        assert!(report.levels.iter().all(|level| level.exhaustive));
        assert_eq!(report.levels[0].combos_evaluated, 1);
        assert_eq!(report.levels[2].combos_evaluated, 6);
        // Bandwidth decays monotonically in f; the full scheme's levels are
        // permutation-symmetric so min == max.
        for pair in report.levels.windows(2) {
            assert!(pair[0].mean_bandwidth >= pair[1].mean_bandwidth);
        }
        for level in &report.levels {
            assert!((level.min_bandwidth - level.max_bandwidth).abs() < 1e-12);
        }
        assert_eq!(report.levels[b].mean_bandwidth, 0.0);
        assert_eq!(report.levels[b].min_accessible_fraction, 0.0);
        // Availability weighting sits between dead and healthy.
        assert!(report.expected_bandwidth > 0.0);
        assert!(report.expected_bandwidth <= report.healthy_bandwidth + 1e-12);
        assert!(report.per_class_decay.is_none());
    }

    #[test]
    fn kclass_decay_table_obeys_death_law() {
        let n = 8;
        let b = 4;
        let net =
            BusNetwork::new(n, n, b, ConnectionScheme::uniform_classes(n, b).unwrap()).unwrap();
        let matrix = hier_matrix(n);
        let report = run_campaign(&net, &matrix, 1.0, &CampaignConfig::default()).unwrap();
        let decay = report.per_class_decay.as_ref().unwrap();
        assert_eq!(decay.len(), b + 1);
        for (f, row) in decay.iter().enumerate() {
            for (c, &bw) in row.iter().enumerate() {
                // Class C_(c+1) connects buses 0..=c (K = B here): dead at
                // f > c, alive otherwise.
                if f >= net.kclass_bus_count(c) {
                    assert_eq!(bw, 0.0, "f={f} c={c}");
                } else {
                    assert!(bw > 0.0, "f={f} c={c}");
                }
            }
        }
    }

    #[test]
    fn monte_carlo_kicks_in_past_the_limit() {
        let n = 8;
        let b = 8;
        let net = BusNetwork::new(n, n, b, ConnectionScheme::Full).unwrap();
        let matrix = UniformModel::new(n, n).unwrap().matrix();
        let config = CampaignConfig {
            exhaustive_limit: 8,
            samples: 16,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&net, &matrix, 1.0, &config).unwrap();
        // C(8,0)=1 and C(8,1)=8 fit; C(8,2)=28 must be sampled.
        assert!(report.levels[0].exhaustive);
        assert!(report.levels[1].exhaustive);
        assert!(!report.levels[2].exhaustive);
        assert_eq!(report.levels[2].combos_evaluated, 16);
        // Determinism: same config, same report.
        let again = run_campaign(&net, &matrix, 1.0, &config).unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn symmetry_collapse_matches_uncollapsed_reference() {
        let n = 8;
        let b = 6;
        let net = BusNetwork::new(n, n, b, ConnectionScheme::Full).unwrap();
        let matrix = hier_matrix(n);
        let collapsed = run_campaign(&net, &matrix, 0.9, &CampaignConfig::default()).unwrap();
        let reference = run_campaign(
            &net,
            &matrix,
            0.9,
            &CampaignConfig {
                collapse_symmetry: false,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        // Exact structural equality: same per-level aggregates, same worst
        // masks, same availability weighting — the collapse is invisible in
        // the report.
        assert_eq!(collapsed, reference);

        // Monte-Carlo levels collapse too (all sampled masks hit the same
        // canonical entry).
        let mc = CampaignConfig {
            exhaustive_limit: 4,
            samples: 24,
            ..CampaignConfig::default()
        };
        let mc_collapsed = run_campaign(&net, &matrix, 0.9, &mc).unwrap();
        let mc_reference = run_campaign(
            &net,
            &matrix,
            0.9,
            &CampaignConfig {
                collapse_symmetry: false,
                ..mc
            },
        )
        .unwrap();
        assert_eq!(mc_collapsed, mc_reference);

        // Asymmetric schemes are untouched by the flag: the collapse gate
        // never fires for K-class networks.
        let kc =
            BusNetwork::new(n, n, 4, ConnectionScheme::uniform_classes(n, 4).unwrap()).unwrap();
        let a = run_campaign(&kc, &matrix, 0.9, &CampaignConfig::default()).unwrap();
        let b = run_campaign(
            &kc,
            &matrix,
            0.9,
            &CampaignConfig {
                collapse_symmetry: false,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_campaign_is_a_lower_bound() {
        let n = 8;
        let b = 4;
        let net = BusNetwork::new(n, n, b, ConnectionScheme::Full).unwrap();
        let matrix = hier_matrix(n);
        let full = run_campaign(&net, &matrix, 1.0, &CampaignConfig::default()).unwrap();
        let truncated = run_campaign(
            &net,
            &matrix,
            1.0,
            &CampaignConfig {
                max_failures: Some(2),
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        assert_eq!(truncated.levels.len(), 3);
        assert!(truncated.expected_bandwidth <= full.expected_bandwidth + 1e-12);
    }

    #[test]
    fn bad_configs_are_rejected() {
        let net = BusNetwork::new(8, 8, 4, ConnectionScheme::Full).unwrap();
        let matrix = hier_matrix(8);
        let bad = |config: CampaignConfig| {
            assert!(matches!(
                run_campaign(&net, &matrix, 1.0, &config),
                Err(CampaignError::BadConfig { .. })
            ));
        };
        bad(CampaignConfig {
            samples: 0,
            ..CampaignConfig::default()
        });
        bad(CampaignConfig {
            bus_failure_prob: 1.5,
            ..CampaignConfig::default()
        });
        bad(CampaignConfig {
            max_failures: Some(9),
            ..CampaignConfig::default()
        });
        // Analysis errors propagate.
        assert!(matches!(
            run_campaign(&net, &matrix, 2.0, &CampaignConfig::default()),
            Err(CampaignError::Analysis(_))
        ));
    }

    #[test]
    fn cross_validation_on_a_single_connection_mask_is_tight() {
        // B = M single connection: the analytical busy probability is exact
        // per bus, so the gap is pure simulation noise.
        let n = 8;
        let net =
            BusNetwork::new(n, n, 8, ConnectionScheme::balanced_single(n, 8).unwrap()).unwrap();
        let matrix = hier_matrix(n);
        let mask = FaultMask::with_failures(8, &[0, 3]).unwrap();
        let check = cross_validate(&net, &matrix, 1.0, &mask, 40_000, 7).unwrap();
        assert_eq!(check.failed_buses, vec![0, 3]);
        assert!(
            check.gap.abs() < 0.02,
            "analytical {} vs simulated {}",
            check.analytical,
            check.simulated
        );
    }
}
