//! Shared helpers for the benchmark harness.
//!
//! Each Criterion bench in `benches/` regenerates one table or figure of
//! Chen & Sheu (ICDCS 1988) — printing the same rows/series the paper
//! reports — and then measures how fast the regeneration (or the underlying
//! simulation) runs. The ablation benches compare design choices called out
//! in `DESIGN.md`: exact vs approximate analysis, alias vs linear sampling,
//! drop vs resubmission semantics, and K-class memory placement.

use rand::Rng;

/// A naive linear-scan CDF sampler — the baseline the alias-method ablation
/// compares against.
///
/// # Examples
///
/// ```
/// use mbus_bench::LinearSampler;
/// use rand::SeedableRng;
///
/// let sampler = LinearSampler::new(&[0.25, 0.25, 0.5]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert!(sampler.sample(&mut rng) < 3);
/// ```
#[derive(Debug, Clone)]
pub struct LinearSampler {
    cdf: Vec<f64>,
}

impl LinearSampler {
    /// Builds the sampler from (unnormalized) non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty or sum to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive mass");
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Self { cdf }
    }

    /// Draws one outcome by scanning the CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rand::RngExt::random(rng);
        self.cdf
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cdf.len() - 1)
    }
}

/// Prints a table header line for bench output so the regenerated series
/// stand out in `cargo bench` logs.
pub fn banner(title: &str) {
    println!("\n===== {title} =====\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_sampler_matches_weights() {
        let sampler = LinearSampler::new(&[1.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000)
            .filter(|_| sampler.sample(&mut rng) == 1)
            .count();
        assert!((hits as f64 / 100_000.0 - 0.75).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn zero_mass_rejected() {
        let _ = LinearSampler::new(&[0.0]);
    }
}
