//! Cross-validation series: analytical vs exact vs simulated bandwidth for
//! every scheme, plus simulator throughput measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbus_core::paper_params;
use mbus_core::prelude::*;

fn cross_validation_table() {
    mbus_bench::banner("Analysis vs exact vs simulation (N = 8, B = 4, hier, r = 1.0)");
    let n = 8;
    let b = 4;
    let model = paper_params::hierarchical(n).expect("paper size");
    let schemes: Vec<(&str, ConnectionScheme)> = vec![
        ("full", ConnectionScheme::Full),
        (
            "single",
            ConnectionScheme::balanced_single(n, b).expect("valid"),
        ),
        ("partial g=2", ConnectionScheme::PartialGroups { groups: 2 }),
        (
            "kclass K=4",
            ConnectionScheme::uniform_classes(n, b).expect("valid"),
        ),
        ("crossbar", ConnectionScheme::Crossbar),
    ];
    println!("| scheme | analytic | exact | simulated (95% CI) |");
    println!("|---|---|---|---|");
    for (name, scheme) in schemes {
        let net = BusNetwork::new(n, n, b, scheme).expect("valid");
        let system = System::new(net, &model, 1.0).expect("valid");
        let analytic = system.analytic().expect("valid").bandwidth;
        let exact = system.exact().expect("small system");
        let sim = system
            .simulate(&SimConfig::new(100_000).with_warmup(5_000).with_seed(23))
            .expect("sim runs");
        assert!(
            (sim.bandwidth.mean() - exact).abs() < 0.05,
            "{name}: simulation must track the exact value"
        );
        println!(
            "| {name} | {analytic:.4} | {exact:.4} | {} |",
            sim.bandwidth
        );
    }
}

fn bench(c: &mut Criterion) {
    cross_validation_table();

    // Simulator throughput per scheme (cycles per iteration = 1000).
    let n = 16;
    let b = 8;
    let model = paper_params::hierarchical(n).expect("paper size");
    let matrix = model.matrix();
    let mut group = c.benchmark_group("simulate_1000_cycles");
    let schemes: Vec<(&str, ConnectionScheme)> = vec![
        ("full", ConnectionScheme::Full),
        (
            "single",
            ConnectionScheme::balanced_single(n, b).expect("valid"),
        ),
        ("partial", ConnectionScheme::PartialGroups { groups: 2 }),
        (
            "kclass",
            ConnectionScheme::uniform_classes(n, b).expect("valid"),
        ),
        ("crossbar", ConnectionScheme::Crossbar),
    ];
    for (name, scheme) in schemes {
        let net = BusNetwork::new(n, n, b, scheme).expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(name), &net, |bch, net| {
            let mut sim = Simulator::build(net, &matrix, 1.0).expect("valid");
            sim.reset(3);
            bch.iter(|| {
                for _ in 0..1000 {
                    sim.step();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
