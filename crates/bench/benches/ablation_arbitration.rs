//! Ablation: the paper's drop semantics (assumption 5) vs resubmission,
//! and the §II-A class-placement principle.
//!
//! Two design questions the paper leaves open are measured here:
//!
//! 1. What changes if blocked requests are *resubmitted* instead of
//!    dropped (the Marsan/Mudge regime)?
//! 2. How much does placing frequently-referenced memories in
//!    better-connected classes help a K-class network (the paper's stated
//!    placement principle)?

use criterion::{criterion_group, criterion_main, Criterion};
use mbus_core::analysis::memory_bandwidth;
use mbus_core::paper_params;
use mbus_core::prelude::*;

fn resubmission_sweep() {
    mbus_bench::banner("Drop vs resubmission semantics (full connection, hierarchical)");
    println!("| N | B | r | bandwidth (drop) | bandwidth (resubmit) | mean wait |");
    println!("|---|---|---|---|---|---|");
    for (n, b, r) in [(8usize, 4usize, 1.0f64), (8, 4, 0.5), (16, 8, 1.0)] {
        let net = BusNetwork::new(n, n, b, ConnectionScheme::Full).expect("valid");
        let model = paper_params::hierarchical(n).expect("paper size");
        let system = System::new(net, &model, r).expect("valid");
        let base = SimConfig::new(60_000).with_warmup(3_000).with_seed(11);
        let drop = system.simulate(&base).expect("sim runs");
        let resub = system
            .simulate(&base.clone().with_resubmission(true))
            .expect("sim runs");
        println!(
            "| {n} | {b} | {r} | {:.3} | {:.3} | {:.3} cycles |",
            drop.bandwidth.mean(),
            resub.bandwidth.mean(),
            resub.mean_wait
        );
    }
    println!(
        "\nResubmission keeps saturating workloads at the bus capacity and adds \
         queueing delay; dropped-request bandwidth matches the paper's model."
    );
}

fn placement_principle() {
    mbus_bench::banner("K-class placement principle (hot modules on well-connected buses)");
    // Favorite-memory traffic onto a 16x16x8, K = 8 network: hot memories
    // either in the top class (8 buses) or the bottom class (1 bus).
    let n = 16;
    let b = 8;
    let net = BusNetwork::new(
        n,
        n,
        b,
        ConnectionScheme::uniform_classes(n, b).expect("valid"),
    )
    .expect("valid");
    let hot_row = |hot: [usize; 2]| -> Vec<f64> {
        let mut row = vec![0.2 / 14.0; n];
        row[hot[0]] = 0.4;
        row[hot[1]] = 0.4;
        row
    };
    println!("| hot module placement | analytical bandwidth |");
    println!("|---|---|");
    for (label, hot) in [
        ("class C_8 (8 buses)", [14, 15]),
        ("class C_1 (1 bus)", [0, 1]),
    ] {
        let matrix = RequestMatrix::from_rows(vec![hot_row(hot); n]).expect("stochastic");
        let bw = memory_bandwidth(&net, &matrix, 1.0).expect("valid");
        println!("| {label} | {bw:.3} |");
    }
    println!("\nPlacing hot modules in high classes recovers bandwidth, as §II-A argues.");
}

fn bench(c: &mut Criterion) {
    resubmission_sweep();
    placement_principle();

    // Measure a simulation step under both semantics.
    let n = 16;
    let net = BusNetwork::new(n, n, 8, ConnectionScheme::Full).expect("valid");
    let model = paper_params::hierarchical(n).expect("paper size");
    let matrix = model.matrix();
    let mut group = c.benchmark_group("sim_step");
    group.bench_function("drop_semantics", |bch| {
        let mut sim = Simulator::build(&net, &matrix, 1.0).expect("valid");
        sim.reset(1);
        bch.iter(|| sim.step().grants.len())
    });
    group.bench_function("resubmission", |bch| {
        let mut sim = Simulator::build(&net, &matrix, 1.0).expect("valid");
        sim.reset(1);
        sim.set_resubmission(true);
        bch.iter(|| sim.step().grants.len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
