//! Regenerates Table II - full bus-memory connection, r=1.0 and measures the analytical pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use mbus_core::tables;

fn bench(c: &mut Criterion) {
    let table = tables::table2();
    mbus_bench::banner("Table II - full bus-memory connection, r=1.0");
    print!("{}", table.to_markdown());
    println!(
        "max |computed - paper| over {} legible cells: {:.4}",
        table.reference_cell_count(),
        table.max_abs_deviation()
    );
    assert!(table.max_abs_deviation() < 0.011, "table must reproduce");

    c.bench_function("regenerate_table2", |b| b.iter(tables::table2));
}

criterion_group!(benches, bench);
criterion_main!(benches);
