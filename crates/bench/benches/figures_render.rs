//! Re-draws the paper's Figures 1–4 and measures the renderers.

use criterion::{criterion_group, criterion_main, Criterion};
use mbus_core::tables;
use mbus_core::topology::{render, BusNetwork, ConnectionScheme};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for (caption, art) in tables::figures() {
        mbus_bench::banner(&caption);
        println!("{art}");
    }

    let fig3 = BusNetwork::new(
        3,
        6,
        4,
        ConnectionScheme::uniform_classes(6, 3).expect("valid"),
    )
    .expect("valid");
    c.bench_function("render_ascii_fig3", |b| {
        b.iter(|| render::ascii_diagram(black_box(&fig3)))
    });
    c.bench_function("render_dot_fig3", |b| {
        b.iter(|| render::dot_graph(black_box(&fig3)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
