//! Ablation: the paper's independence approximation vs the exact models.
//!
//! Prints the approximation-error sweep for the full-connection network
//! under the paper's hierarchical workload (exact via inclusion–exclusion,
//! feasible at every table size), then measures the relative cost of the
//! three evaluation layers.

use criterion::{criterion_group, criterion_main, Criterion};
use mbus_core::analysis::memory_bandwidth;
use mbus_core::exact::{compare, distinct, enumerate};
use mbus_core::paper_params;
use mbus_core::topology::{BusNetwork, ConnectionScheme};
use mbus_core::workload::RequestModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    mbus_bench::banner("Approximation error: full connection, hierarchical, r = 1.0");
    println!("| N | B | approximate (paper) | exact | rel. error |");
    println!("|---|---|---|---|---|");
    for n in [8usize, 16, 32] {
        let model = paper_params::hierarchical(n).expect("paper size");
        let rows = compare::full_connection_error_sweep(&model, &[n / 4, n / 2, 3 * n / 4, n], 1.0)
            .expect("sweep");
        for row in rows {
            println!(
                "| {n} | {} | {:.4} | {:.4} | {:+.3}% |",
                row.buses,
                row.approximate,
                row.exact,
                100.0 * row.relative_error
            );
        }
    }
    println!("\nError peaks near B = N/2 and vanishes at B = N (E[D] is exact).");

    let model8 = paper_params::hierarchical(8).expect("paper size");
    let matrix8 = model8.matrix();
    let net8 = BusNetwork::new(8, 8, 4, ConnectionScheme::Full).expect("valid");
    c.bench_function("approx_analysis_n8", |b| {
        b.iter(|| memory_bandwidth(black_box(&net8), black_box(&matrix8), 1.0))
    });
    c.bench_function("exact_enumeration_n8", |b| {
        b.iter(|| enumerate::exact_bandwidth(black_box(&net8), black_box(&matrix8), 1.0))
    });
    let model32 = paper_params::hierarchical(32).expect("paper size");
    c.bench_function("exact_inclusion_exclusion_n32", |b| {
        b.iter(|| distinct::two_level_distinct_pmf(black_box(&model32), 1.0))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
