//! Regenerates Table V - partial bus networks, g=2 and measures the analytical pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use mbus_core::tables;

fn bench(c: &mut Criterion) {
    let table = tables::table5();
    mbus_bench::banner("Table V - partial bus networks, g=2");
    print!("{}", table.to_markdown());
    println!(
        "max |computed - paper| over {} legible cells: {:.4}",
        table.reference_cell_count(),
        table.max_abs_deviation()
    );
    assert!(table.max_abs_deviation() < 0.011, "table must reproduce");

    c.bench_function("regenerate_table5", |b| b.iter(tables::table5));
}

criterion_group!(benches, bench);
criterion_main!(benches);
