//! Ablation: alias-method vs linear-scan destination sampling.
//!
//! The simulator draws one destination per requesting processor per cycle;
//! this bench quantifies why the workspace uses Walker's alias method
//! (O(1) per draw) instead of the obvious CDF scan (O(M) per draw).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbus_bench::LinearSampler;
use mbus_core::paper_params;
use mbus_core::workload::{AliasSampler, RequestModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    mbus_bench::banner("Sampler ablation: alias vs linear CDF scan");
    let mut group = c.benchmark_group("sampler");
    for n in [8usize, 32] {
        let model = paper_params::hierarchical(n).expect("paper size");
        let row = model.matrix().row(0).to_vec();
        let alias = AliasSampler::new(&row).expect("valid weights");
        let linear = LinearSampler::new(&row);
        group.bench_with_input(BenchmarkId::new("alias", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(alias.sample(&mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(linear.sample(&mut rng)))
        });
    }
    group.finish();

    // Statistical equivalence check: both samplers draw the same
    // distribution (asserted, not benched).
    let model = paper_params::hierarchical(8).expect("paper size");
    let row = model.matrix().row(0).to_vec();
    let alias = AliasSampler::new(&row).expect("valid weights");
    let linear = LinearSampler::new(&row);
    let mut rng = StdRng::seed_from_u64(2);
    let draws = 200_000;
    let mut counts = [[0u32; 8]; 2];
    for _ in 0..draws {
        counts[0][alias.sample(&mut rng)] += 1;
        counts[1][linear.sample(&mut rng)] += 1;
    }
    #[allow(clippy::needless_range_loop)] // j indexes two parallel tallies
    for j in 0..8 {
        let a = counts[0][j] as f64 / draws as f64;
        let l = counts[1][j] as f64 / draws as f64;
        assert!((a - l).abs() < 0.01, "samplers disagree at {j}: {a} vs {l}");
    }
    println!("alias and linear samplers agree on the drawn distribution (200k draws)");
}

criterion_group!(benches, bench);
criterion_main!(benches);
