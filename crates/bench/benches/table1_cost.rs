//! Regenerates Table I (cost and fault tolerance) and measures the cost
//! model.

use criterion::{criterion_group, criterion_main, Criterion};
use mbus_core::report::cost_table_markdown;
use mbus_core::tables;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    mbus_bench::banner("Table I - cost and fault tolerance (N=16, B=8, g=2, K=8)");
    let rows = tables::table1(16, 8, 2, 8).expect("paper's Table I parameters are valid");
    print!("{}", cost_table_markdown(&rows));

    c.bench_function("table1_cost_model", |b| {
        b.iter(|| tables::table1(black_box(16), black_box(8), 2, 8))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
