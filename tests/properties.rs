//! Property-based tests over the analytical core, the exact models, and the
//! workload machinery.

use multibus::exact::enumerate;
use multibus::prelude::*;
use proptest::prelude::*;

/// A random row-stochastic matrix of the given shape.
fn request_matrix(n: usize, m: usize) -> impl Strategy<Value = RequestMatrix> {
    proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, m), n).prop_map(
        move |mut rows| {
            for row in &mut rows {
                let sum: f64 = row.iter().sum();
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
            RequestMatrix::from_rows(rows).expect("normalized rows are stochastic")
        },
    )
}

/// Random valid (scheme, b) pairs for an 8-memory network.
fn scheme_for_8() -> impl Strategy<Value = (ConnectionScheme, usize)> {
    prop_oneof![
        (1usize..=8).prop_map(|b| (ConnectionScheme::Full, b)),
        (1usize..=8)
            .prop_map(|b| { (ConnectionScheme::balanced_single(8, b).expect("b <= m"), b,) }),
        (1usize..=4).prop_map(|half| (ConnectionScheme::PartialGroups { groups: 2 }, half * 2)),
        (1usize..=8).prop_map(|b| {
            let k = b.min(4);
            (ConnectionScheme::uniform_classes(8, k).expect("k <= m"), b)
        }),
        (1usize..=8).prop_map(|b| (ConnectionScheme::Crossbar, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bandwidth is bounded by capacity, offered load, and expected distinct
    /// requests, for any workload and scheme.
    #[test]
    fn bandwidth_bounds((scheme, b) in scheme_for_8(),
                        matrix in request_matrix(6, 8),
                        r in 0.0f64..=1.0) {
        let net = BusNetwork::new(6, 8, b, scheme).unwrap();
        let bw = memory_bandwidth(&net, &matrix, r).unwrap();
        prop_assert!(bw >= -1e-12);
        prop_assert!(bw <= net.capacity() as f64 + 1e-9);
        prop_assert!(bw <= matrix.offered_load(r) + 1e-9);
        // Never more than the expected number of distinct requested
        // memories (the crossbar bound).
        let xs = matrix.memory_request_probs(r).unwrap();
        prop_assert!(bw <= xs.iter().sum::<f64>() + 1e-9);
    }

    /// The analytical bandwidth is monotone in the request rate.
    #[test]
    fn bandwidth_monotone_in_rate((scheme, b) in scheme_for_8(),
                                  matrix in request_matrix(6, 8),
                                  r in 0.0f64..0.99) {
        let net = BusNetwork::new(6, 8, b, scheme).unwrap();
        let low = memory_bandwidth(&net, &matrix, r).unwrap();
        let high = memory_bandwidth(&net, &matrix, (r + 0.01).min(1.0)).unwrap();
        prop_assert!(high >= low - 1e-9);
    }

    /// Full connection dominates every other bus scheme; the crossbar
    /// dominates everything.
    #[test]
    fn scheme_dominance(matrix in request_matrix(8, 8), r in 0.1f64..=1.0, b in 1usize..=8) {
        let bw = |scheme: ConnectionScheme| {
            memory_bandwidth(&BusNetwork::new(8, 8, b, scheme).unwrap(), &matrix, r).unwrap()
        };
        let full = bw(ConnectionScheme::Full);
        let xbar = bw(ConnectionScheme::Crossbar);
        let single = bw(ConnectionScheme::balanced_single(8, b).unwrap());
        prop_assert!(xbar >= full - 1e-9);
        prop_assert!(full >= single - 1e-9);
        if b % 2 == 0 {
            let partial = bw(ConnectionScheme::PartialGroups { groups: 2 });
            prop_assert!(full >= partial - 1e-9);
            prop_assert!(partial >= single - 1e-9);
        }
    }

    /// The exact enumeration and the analytical model agree within a firm
    /// global bound for arbitrary workloads (the independence approximation
    /// is never wildly wrong on these sizes).
    #[test]
    fn analysis_close_to_exact((scheme, b) in scheme_for_8(),
                               matrix in request_matrix(6, 8),
                               r in 0.1f64..=1.0) {
        let net = BusNetwork::new(6, 8, b, scheme).unwrap();
        let approx = memory_bandwidth(&net, &matrix, r).unwrap();
        let exact = enumerate::exact_bandwidth(&net, &matrix, r).unwrap();
        prop_assert!((approx - exact).abs() < 0.30,
                     "approx {approx} vs exact {exact}");
        // And exactly equal where no bus constraint binds — except for
        // K-class networks, whose §III-D assignment can idle low buses even
        // with B = M (see tests/kclass_behavior.rs).
        if net.capacity() >= 8 && net.kind() != SchemeKind::KClasses {
            prop_assert!((approx - exact).abs() < 1e-9);
        }
    }

    /// Stage-2 oracle sanity for arbitrary requested sets: the service
    /// count never exceeds the requested count nor the capacity, and adding
    /// a request never reduces it.
    #[test]
    fn served_oracle_is_monotone((scheme, b) in scheme_for_8(), mask in 0u32..256) {
        let net = BusNetwork::new(8, 8, b, scheme).unwrap();
        let requested: Vec<bool> = (0..8).map(|j| mask & (1 << j) != 0).collect();
        let served = enumerate::served_given_requested(&net, &requested);
        let count = requested.iter().filter(|&&x| x).count();
        prop_assert!(served <= count);
        prop_assert!(served <= net.capacity());
        // Monotonicity: turning one more memory on cannot reduce service.
        for j in 0..8 {
            if !requested[j] {
                let mut more = requested.clone();
                more[j] = true;
                prop_assert!(enumerate::served_given_requested(&net, &more) >= served);
            }
        }
    }

    /// Hierarchical models produce row-stochastic matrices whose per-memory
    /// request probabilities are symmetric across memories.
    #[test]
    fn hierarchical_matrix_invariants(clusters in 2usize..=4, per in 2usize..=4,
                                      fav in 0.34f64..0.9, r in 0.1f64..=1.0) {
        let n = clusters * per;
        let rest = 1.0 - fav;
        let model = HierarchicalModel::two_level_paired(
            n, clusters, [fav, rest * 0.75, rest * 0.25]).unwrap();
        let matrix = model.matrix();
        let xs = matrix.memory_request_probs(r).unwrap();
        let x0 = xs[0];
        for (j, &x) in xs.iter().enumerate() {
            prop_assert!((x - x0).abs() < 1e-12, "memory {j} asymmetric: {x} vs {x0}");
        }
        // Equation (2) agrees with the exact per-memory computation.
        let eq2 = multibus::analysis::paper::eq2_request_probability(
            model.hierarchy(), model.fractions(), r).unwrap();
        prop_assert!((eq2 - x0).abs() < 1e-12);
    }

    /// Cost accounting: the sum of per-bus memory attachments equals the
    /// memory-side connection count for every scheme.
    #[test]
    fn cost_consistency((scheme, b) in scheme_for_8()) {
        let net = BusNetwork::new(8, 8, b, scheme).unwrap();
        if net.kind() == SchemeKind::Crossbar {
            prop_assert_eq!(net.cost().connections, 64);
        } else {
            let memory_side: usize =
                (0..b).map(|bus| net.memories_of_bus(bus).count()).sum();
            let expected = b * 8 + memory_side; // BN + memory attachments
            prop_assert_eq!(net.cost().connections, expected);
            // Per-bus loads are N + attachments.
            for bus in 0..b {
                prop_assert_eq!(
                    net.cost().bus_loads[bus],
                    8 + net.memories_of_bus(bus).count()
                );
            }
        }
    }

    /// Fault masks: reachability is monotone (repairing a bus never hurts).
    #[test]
    fn reachability_monotone((scheme, b) in scheme_for_8(), mask_bits in 0u32..256) {
        let net = BusNetwork::new(8, 8, b, scheme).unwrap();
        let failures: Vec<usize> = (0..b).filter(|i| mask_bits & (1 << i) != 0).collect();
        let mask = FaultMask::with_failures(b, &failures).unwrap();
        let view = DegradedView::new(&net, &mask).unwrap();
        let accessible = view.accessible_memory_count();
        for &bus in &failures {
            let mut repaired = mask.clone();
            repaired.repair(bus).unwrap();
            let better = DegradedView::new(&net, &repaired).unwrap().accessible_memory_count();
            prop_assert!(better >= accessible);
        }
    }
}

/// Deterministic (non-proptest) regression: equation (2)'s homogeneous X
/// equals the matrix-derived X for the paper's own configurations.
#[test]
fn paper_configurations_are_homogeneous() {
    for n in [8usize, 12, 16, 32] {
        let model = multibus::paper_params::hierarchical(n).unwrap();
        let xs = model.matrix().memory_request_probs(1.0).unwrap();
        for &x in &xs {
            assert!((x - xs[0]).abs() < 1e-12);
        }
    }
}
