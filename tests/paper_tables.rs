//! The headline reproduction test: every legible cell of every table in the
//! paper must regenerate within print precision, and the §IV qualitative
//! claims must hold.

use multibus::prelude::*;
use multibus::tables;

#[test]
fn all_tables_reproduce_within_print_precision() {
    let mut total_cells = 0;
    for table in tables::all_bandwidth_tables() {
        let deviation = table.max_abs_deviation();
        let cells = table.reference_cell_count();
        assert!(
            deviation < 0.011,
            "Table {}: deviation {deviation} over {cells} cells",
            table.id
        );
        total_cells += cells;
    }
    // 279 legible (N, B, model) cells across Tables II–VI.
    assert_eq!(total_cells, 279);
}

#[test]
fn every_block_covers_the_papers_grid() {
    let t2 = tables::table2();
    assert_eq!(
        t2.blocks.iter().map(|b| b.n).collect::<Vec<_>>(),
        vec![8, 12, 16]
    );
    for block in &t2.blocks {
        assert_eq!(block.cells.len(), block.n, "B runs 1..=N in Table II");
        assert!(block.crossbar.is_some());
    }
    let t4 = tables::table4();
    assert_eq!(t4.blocks.len(), 6, "three sizes × two rates");
    let t6 = tables::table6();
    for block in &t6.blocks {
        assert!(block.cells.iter().all(|c| c.buses >= 2));
    }
}

#[test]
fn hierarchical_always_beats_uniform() {
    // The paper's headline observation: "the memory bandwidth of all the
    // networks in the hierarchical requesting case is higher than that in
    // the uniform requesting case."
    for table in tables::all_bandwidth_tables() {
        for block in &table.blocks {
            for cell in &block.cells {
                assert!(
                    cell.hier >= cell.unif - 1e-9,
                    "Table {} N={} B={}: hier {} < unif {}",
                    table.id,
                    block.n,
                    cell.buses,
                    cell.hier,
                    cell.unif
                );
            }
        }
    }
}

#[test]
fn bandwidth_is_monotone_in_buses_within_blocks() {
    for table in tables::all_bandwidth_tables() {
        for block in &table.blocks {
            for pair in block.cells.windows(2) {
                assert!(
                    pair[1].hier >= pair[0].hier - 1e-9,
                    "Table {} N={}",
                    table.id,
                    block.n
                );
                assert!(pair[1].unif >= pair[0].unif - 1e-9);
            }
        }
    }
}

#[test]
fn crossbar_rows_match_b_equals_n() {
    // The paper notes the single-connection network with B = N equals the
    // crossbar; the same holds for the full connection's last row.
    for table in [tables::table2(), tables::table3()] {
        for block in &table.blocks {
            let last = block.cells.last().unwrap();
            let (xh, xu) = block.crossbar.unwrap();
            assert!((last.hier - xh).abs() < 1e-9);
            assert!((last.unif - xu).abs() < 1e-9);
        }
    }
}

#[test]
fn table5_and_table6_stay_close() {
    // §IV: the K-class network's bandwidth is "very close" to the g = 2
    // partial network at equal cost. By the paper's own tables the claim is
    // tight at r = 1.0 (≤ ~3%) and looser at r = 0.5 (up to ~10.4% at
    // N = 32, B = 16: 13.02 vs 11.66); the partial network never loses.
    let t5 = tables::table5();
    let t6 = tables::table6();
    for (b5, b6) in t5.blocks.iter().zip(&t6.blocks) {
        assert_eq!(b5.n, b6.n);
        assert_eq!(b5.r, b6.r);
        for (c5, c6) in b5.cells.iter().zip(&b6.cells) {
            assert_eq!(c5.buses, c6.buses);
            // Neither scheme dominates: kclass wins at B = 2 (2.00 vs
            // 1.99), partial wins elsewhere.
            let gap = (c5.hier - c6.hier).abs() / c5.hier;
            let bound = if b5.r == 1.0 { 0.04 } else { 0.11 };
            assert!(
                gap < bound,
                "N={} B={} r={}: partial {} vs kclass {}",
                b5.n,
                c5.buses,
                b5.r,
                c5.hier,
                c6.hier
            );
        }
    }
}

#[test]
fn full_dominates_partial_dominates_single_cellwise() {
    // §IV's scheme ordering, across the shared (N, B, r) grid of Tables
    // IV–VI vs the full-connection tables.
    for (n, b, r) in [
        (8usize, 4usize, 1.0f64),
        (16, 8, 1.0),
        (16, 8, 0.5),
        (32, 16, 1.0),
    ] {
        let model = multibus::paper_params::hierarchical(n).unwrap();
        let matrix = model.matrix();
        let bw = |scheme: ConnectionScheme| {
            memory_bandwidth(&BusNetwork::new(n, n, b, scheme).unwrap(), &matrix, r).unwrap()
        };
        let full = bw(ConnectionScheme::Full);
        let partial = bw(ConnectionScheme::PartialGroups { groups: 2 });
        let kclass = bw(ConnectionScheme::uniform_classes(n, b).unwrap());
        let single = bw(ConnectionScheme::balanced_single(n, b).unwrap());
        assert!(full >= partial && partial >= single, "N={n} B={b} r={r}");
        assert!(full >= kclass && kclass >= single, "N={n} B={b} r={r}");
    }
}

#[test]
fn section_four_ratios() {
    let ratios = tables::bus_halving_ratios();
    assert_eq!(ratios.len(), 2);
    let (_, h1, u1) = ratios[0];
    let (_, h05, u05) = ratios[1];
    // Ratios shrink when the rate halves (buses become underutilized).
    assert!(h1 > h05 && u1 > u05);
    // Hierarchical traffic depends more on the bus count than uniform.
    assert!(h1 > u1);
}
