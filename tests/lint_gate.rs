//! Workspace self-cleanliness gate: `cargo test` fails if `mbus lint`
//! would — deleting a single allow pragma or reintroducing an `unwrap()`
//! in a library crate breaks this test, not just the CI lint step.

use mbus_lint::{lint_workspace, render_human};
use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace sources must be readable");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}); did the walker lose the crates?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "the workspace must pass its own lint:\n{}",
        render_human(&report)
    );
    // Every suppression in the tree is annotated; the count only moves when
    // someone adds or removes an allow, which reviewers should see.
    assert!(
        report.suppressed > 0,
        "expected at least one annotated allow in the workspace"
    );
}
