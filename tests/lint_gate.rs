//! Workspace self-cleanliness gate: `cargo test` fails if `mbus lint`
//! would — deleting a single allow pragma or reintroducing an `unwrap()`
//! in a library crate breaks this test, not just the CI lint step.

use mbus_lint::{lint_workspace, render_human, workspace_source_files};
use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace sources must be readable");
    assert!(
        report.files_scanned > 60,
        "suspiciously few files scanned ({}); did the walker lose the crates?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "the workspace must pass its own lint:\n{}",
        render_human(&report)
    );
    // Every suppression in the tree is annotated; the count only moves when
    // someone adds or removes an allow, which reviewers should see.
    assert!(
        report.suppressed > 0,
        "expected at least one annotated allow in the workspace"
    );
}

#[test]
fn lint_walk_covers_the_server_crate() {
    // The serving layer is user-reachable over the network, so the no-panic
    // and lossy-cast gates must actually walk it: a violation there fails
    // `workspace_is_lint_clean` above only if these files are in scope.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = workspace_source_files(root).expect("walker");
    let server_files: Vec<&str> = files
        .iter()
        .filter(|(path, _)| path.starts_with("crates/server/src/"))
        .map(|(path, _)| path.as_str())
        .collect();
    for module in [
        "crates/server/src/http.rs",
        "crates/server/src/json.rs",
        "crates/server/src/server.rs",
        "crates/server/src/service.rs",
    ] {
        assert!(
            server_files.contains(&module),
            "lint walk must cover {module}; saw {server_files:?}"
        );
    }
    // And they are attributed to the `server` crate, which R2 targets.
    assert!(
        files
            .iter()
            .all(|(path, name)| !path.starts_with("crates/server/") || name == "server"),
        "server sources must carry the crate name R2 keys on"
    );
    assert!(
        mbus_lint::rules::LOSSY_CAST_CRATES.contains(&"server"),
        "R2 must include the server crate"
    );
}

#[test]
fn lint_walk_covers_the_trace_crate() {
    // The trace codec narrows u64 payloads through varints; a lossy cast
    // there silently corrupts recorded events, so R2 must walk it.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = workspace_source_files(root).expect("walker");
    let trace_files: Vec<&str> = files
        .iter()
        .filter(|(path, _)| path.starts_with("crates/trace/src/"))
        .map(|(path, _)| path.as_str())
        .collect();
    for module in [
        "crates/trace/src/format.rs",
        "crates/trace/src/writer.rs",
        "crates/trace/src/reader.rs",
        "crates/trace/src/analyze.rs",
    ] {
        assert!(
            trace_files.contains(&module),
            "lint walk must cover {module}; saw {trace_files:?}"
        );
    }
    assert!(
        files
            .iter()
            .all(|(path, name)| !path.starts_with("crates/trace/") || name == "trace"),
        "trace sources must carry the crate name R2 keys on"
    );
    assert!(
        mbus_lint::rules::LOSSY_CAST_CRATES.contains(&"trace"),
        "R2 must include the trace crate"
    );
}
