//! Workspace self-cleanliness gate: `cargo test` fails if `mbus lint`
//! would — deleting a single allow pragma or reintroducing an `unwrap()`
//! in a library crate breaks this test, not just the CI lint step.

use mbus_lint::{lint_workspace, render_human, workspace_source_files};
use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace sources must be readable");
    assert!(
        report.files_scanned > 60,
        "suspiciously few files scanned ({}); did the walker lose the crates?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "the workspace must pass its own lint:\n{}",
        render_human(&report)
    );
    // Every suppression in the tree is annotated; the count only moves when
    // someone adds or removes an allow, which reviewers should see.
    assert!(
        report.suppressed > 0,
        "expected at least one annotated allow in the workspace"
    );
}

#[test]
fn semantic_rules_ran_and_covered_the_concurrent_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace sources must be readable");
    // The semantic passes (R5–R8) must actually be active — a refactor that
    // drops one from the engine fails here, not silently.
    for rule in [
        "safety_comment",
        "lock_discipline",
        "atomics_ordering",
        "unchecked_result",
    ] {
        assert!(
            report.rules_active.iter().any(|r| r == rule),
            "rule {rule} must be active; saw {:?}",
            report.rules_active
        );
    }
    // The crates that actually hold locks, atomics, and unsafe code are in
    // scope for those passes.
    for crate_name in ["server", "stats", "sim"] {
        assert!(
            report.crates_scanned.iter().any(|c| c == crate_name),
            "crate {crate_name} must be scanned; saw {:?}",
            report.crates_scanned
        );
    }
}

#[test]
fn unsafe_inventory_covers_the_signal_handler() {
    // The workspace's one production `unsafe` site is the SIGTERM handler
    // registration; the R5 inventory must list it, with its rationale.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace sources must be readable");
    let site = report
        .unsafe_sites
        .iter()
        .find(|s| s.path == "crates/server/src/signal.rs")
        .expect("signal.rs unsafe site must be inventoried");
    assert_eq!(site.crate_name, "server");
    assert!(
        site.rationale.is_some(),
        "the signal-handler unsafe block carries a SAFETY rationale"
    );
    // No unsafe site anywhere in the tree is missing its rationale.
    assert!(
        report.unsafe_sites.iter().all(|s| s.rationale.is_some()),
        "every unsafe site documents why it is sound"
    );
}

#[test]
fn lint_walk_covers_the_server_crate() {
    // The serving layer is user-reachable over the network, so the no-panic
    // and lossy-cast gates must actually walk it: a violation there fails
    // `workspace_is_lint_clean` above only if these files are in scope.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = workspace_source_files(root).expect("walker");
    let server_files: Vec<&str> = files
        .iter()
        .filter(|(path, _)| path.starts_with("crates/server/src/"))
        .map(|(path, _)| path.as_str())
        .collect();
    for module in [
        "crates/server/src/http.rs",
        "crates/server/src/json.rs",
        "crates/server/src/server.rs",
        "crates/server/src/service.rs",
    ] {
        assert!(
            server_files.contains(&module),
            "lint walk must cover {module}; saw {server_files:?}"
        );
    }
    // And they are attributed to the `server` crate, which R2 targets.
    assert!(
        files
            .iter()
            .all(|(path, name)| !path.starts_with("crates/server/") || name == "server"),
        "server sources must carry the crate name R2 keys on"
    );
    assert!(
        mbus_lint::rules::LOSSY_CAST_CRATES.contains(&"server"),
        "R2 must include the server crate"
    );
}

#[test]
fn lint_walk_covers_the_trace_crate() {
    // The trace codec narrows u64 payloads through varints; a lossy cast
    // there silently corrupts recorded events, so R2 must walk it.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = workspace_source_files(root).expect("walker");
    let trace_files: Vec<&str> = files
        .iter()
        .filter(|(path, _)| path.starts_with("crates/trace/src/"))
        .map(|(path, _)| path.as_str())
        .collect();
    for module in [
        "crates/trace/src/format.rs",
        "crates/trace/src/writer.rs",
        "crates/trace/src/reader.rs",
        "crates/trace/src/analyze.rs",
    ] {
        assert!(
            trace_files.contains(&module),
            "lint walk must cover {module}; saw {trace_files:?}"
        );
    }
    assert!(
        files
            .iter()
            .all(|(path, name)| !path.starts_with("crates/trace/") || name == "trace"),
        "trace sources must carry the crate name R2 keys on"
    );
    assert!(
        mbus_lint::rules::LOSSY_CAST_CRATES.contains(&"trace"),
        "R2 must include the trace crate"
    );
}

#[test]
fn lint_walk_covers_the_fabric_crate() {
    // The fabric's analytic decomposition is a formula module: R4 must
    // walk it (its closed forms have to be wired into `stats::prob::check`
    // invariants), and the whole crate must come through the walk clean.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = workspace_source_files(root).expect("walker");
    let fabric_files: Vec<&str> = files
        .iter()
        .filter(|(path, _)| path.starts_with("crates/fabric/src/"))
        .map(|(path, _)| path.as_str())
        .collect();
    for module in [
        "crates/fabric/src/topology.rs",
        "crates/fabric/src/engine.rs",
        "crates/fabric/src/analytic.rs",
        "crates/fabric/src/spec.rs",
    ] {
        assert!(
            fabric_files.contains(&module),
            "lint walk must cover {module}; saw {fabric_files:?}"
        );
    }
    assert!(
        mbus_lint::rules::FORMULA_MODULES.contains(&"crates/fabric/src/analytic.rs"),
        "R4 must include the fabric analytic module"
    );
    // Zero violations in the fabric crate specifically.
    let report = lint_workspace(root).expect("workspace sources must be readable");
    let fabric_violations: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.path.starts_with("crates/fabric/"))
        .collect();
    assert!(
        fabric_violations.is_empty(),
        "fabric crate must be lint-clean: {fabric_violations:?}"
    );
    assert!(
        report.crates_scanned.iter().any(|c| c == "fabric"),
        "fabric crate must be scanned; saw {:?}",
        report.crates_scanned
    );
}

#[test]
fn lint_walk_covers_the_scheduler_and_inventories_its_unsafe() {
    // The work-stealing scheduler is the one module in `mbus-stats` with
    // `unsafe` and lock-free atomics; R5 (SAFETY comments) and R7
    // (atomics orderings) are only meaningful if its sources are walked.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = workspace_source_files(root).expect("walker");
    for module in ["crates/stats/src/deque.rs", "crates/stats/src/parallel.rs"] {
        assert!(
            files.iter().any(|(path, _)| path == module),
            "lint walk must cover {module}"
        );
    }
    // Every deque unsafe site is inventoried with a SAFETY rationale, and
    // the inventory attributes them to the stats crate.
    let report = lint_workspace(root).expect("workspace sources must be readable");
    let deque_sites: Vec<_> = report
        .unsafe_sites
        .iter()
        .filter(|s| s.path == "crates/stats/src/deque.rs")
        .collect();
    assert!(
        !deque_sites.is_empty(),
        "the Chase–Lev deque's unsafe sites must be inventoried"
    );
    assert!(
        deque_sites
            .iter()
            .all(|s| s.crate_name == "stats" && s.rationale.is_some()),
        "every deque unsafe site carries a SAFETY rationale"
    );
}
