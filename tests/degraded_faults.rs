//! Cross-validation of the analytical degraded-mode bandwidth
//! (`mbus_analysis::degraded`) against the fault-injecting simulator.
//!
//! Three kinds of pins:
//!
//! * masks where the analytical value is *exact* (no independence
//!   approximation survives) must agree with the simulation within its
//!   batch-means confidence interval;
//! * masks where the analysis approximates must track the simulation to a
//!   few percent, like the healthy-case validation grid;
//! * the K-class death law — class `C_j` serves zero requests after
//!   `j + B − K` worst-case failures while higher classes keep serving —
//!   must hold in the simulated per-memory service rates, not just in the
//!   formulas.

use multibus::campaign::cross_validate;
use multibus::prelude::*;
use multibus::sim::{FaultEvent, FaultEventKind, FaultSchedule};

const CYCLES: u64 = 60_000;

fn hier(n: usize) -> RequestMatrix {
    multibus::paper_params::hierarchical(n).unwrap().matrix()
}

fn lowest_first(buses: usize, f: usize) -> FaultMask {
    let failed: Vec<usize> = (0..f).collect();
    FaultMask::with_failures(buses, &failed).unwrap()
}

#[test]
fn exact_masks_agree_with_simulation_within_ci() {
    // Pinned (scheme, mask) cases where the degraded analysis is exact:
    //
    // 1. Full 8x8x4 with three buses down: at r = 1 every processor
    //    requests every cycle, so at least one memory is always selected
    //    and the single alive bus is saturated — bandwidth is exactly 1.
    // 2. Single 8x8x8 (one memory per bus) with buses {0, 3} down: each
    //    alive bus is busy exactly when its memory is requested, so the
    //    busy probability is the exact per-memory X_j.
    // 3. Crossbar with any mask: bus failures are ignored entirely.
    let n = 8;
    let matrix = hier(n);
    let cases: Vec<(&str, BusNetwork, FaultMask)> = vec![
        (
            "full, 1 alive bus",
            BusNetwork::new(n, n, 4, ConnectionScheme::Full).unwrap(),
            FaultMask::with_failures(4, &[0, 1, 2]).unwrap(),
        ),
        (
            "single B=M, 2 down",
            BusNetwork::new(n, n, 8, ConnectionScheme::balanced_single(n, 8).unwrap()).unwrap(),
            FaultMask::with_failures(8, &[0, 3]).unwrap(),
        ),
        (
            "crossbar, mask ignored",
            BusNetwork::new(n, n, 4, ConnectionScheme::Crossbar).unwrap(),
            FaultMask::with_failures(4, &[1, 2]).unwrap(),
        ),
    ];
    for (name, net, mask) in cases {
        let check = cross_validate(&net, &matrix, 1.0, &mask, CYCLES, 11).unwrap();
        // Allow the CI plus a hair of slack for the CI estimate itself.
        let tolerance = check.sim_half_width.mul_add(3.0, 2e-3);
        assert!(
            check.gap.abs() <= tolerance,
            "{name}: analytical {} vs simulated {} ± {} (gap {})",
            check.analytical,
            check.simulated,
            check.sim_half_width,
            check.gap
        );
    }
}

#[test]
fn approximate_masks_track_simulation_to_a_few_percent() {
    // Where the independence approximation is engaged, the degraded
    // analysis should stay as close to the simulation as the healthy
    // analysis does on the validation grid (a few percent).
    let n = 8;
    let b = 4;
    let matrix = hier(n);
    let cases: Vec<(&str, ConnectionScheme, Vec<usize>)> = vec![
        ("full, 1 down", ConnectionScheme::Full, vec![2]),
        ("full, 2 down", ConnectionScheme::Full, vec![0, 3]),
        (
            "partial g=2, 1 down",
            ConnectionScheme::PartialGroups { groups: 2 },
            vec![0],
        ),
        (
            "partial g=2, group 0 dead",
            ConnectionScheme::PartialGroups { groups: 2 },
            vec![0, 1],
        ),
        (
            "kclass K=4, 1 down",
            ConnectionScheme::uniform_classes(n, b).unwrap(),
            vec![0],
        ),
        (
            "kclass K=4, 2 down",
            ConnectionScheme::uniform_classes(n, b).unwrap(),
            vec![0, 1],
        ),
    ];
    for (name, scheme, failed) in cases {
        let net = BusNetwork::new(n, n, b, scheme).unwrap();
        let mask = FaultMask::with_failures(b, &failed).unwrap();
        let check = cross_validate(&net, &matrix, 1.0, &mask, CYCLES, 13).unwrap();
        let relative = check.gap.abs() / check.simulated.max(1e-9);
        assert!(
            relative < 0.06,
            "{name}: analytical {} vs simulated {} ({:.1}% off)",
            check.analytical,
            check.simulated,
            100.0 * relative
        );
    }
}

#[test]
fn kclass_death_law_holds_in_simulated_service_rates() {
    // 8x8x4, K = 4: class C_j (1-based) connects buses 0..j+B−K, so under
    // lowest-bus-first failures it serves zero requests once
    // f ≥ j + B − K, while every higher class keeps serving.
    let n = 8;
    let b = 4;
    let net = BusNetwork::new(n, n, b, ConnectionScheme::uniform_classes(n, b).unwrap()).unwrap();
    let matrix = hier(n);
    for f in 0..=b {
        let mask = lowest_first(b, f);
        let schedule = FaultSchedule::from_events(
            mask.iter_failed()
                .map(|bus| FaultEvent {
                    cycle: 0,
                    bus,
                    kind: FaultEventKind::Fail,
                })
                .collect(),
        )
        .unwrap();
        let mut sim = Simulator::build(&net, &matrix, 1.0).unwrap();
        let report = sim
            .run(
                &SimConfig::new(CYCLES)
                    .with_warmup(CYCLES / 20)
                    .with_seed(29 + f as u64)
                    .with_faults(schedule),
            )
            .unwrap();
        let analytic = degraded_analyze(&net, &matrix, 1.0, &mask).unwrap();
        let per_class = analytic.per_class_bandwidth.as_ref().unwrap();
        for (c, &analytic_bw) in per_class.iter().enumerate() {
            let memories = net.memories_of_class(c).unwrap();
            let sim_service: f64 = report.memory_service_rates[memories].iter().sum();
            if f >= net.kclass_bus_count(c) {
                assert_eq!(sim_service, 0.0, "f={f}: class {c} must be dead");
                assert_eq!(analytic_bw, 0.0, "f={f}: analytical class {c} dead");
            } else {
                assert!(sim_service > 0.0, "f={f}: class {c} must keep serving");
                assert!(analytic_bw > 0.0, "f={f}: analytical class {c} alive");
            }
        }
    }
}

#[test]
fn degraded_view_and_simulated_unreachable_load_agree() {
    // The simulator reports the offered load it dropped as unreachable;
    // the analysis derives the same quantity from the request matrix and
    // the degraded view's reachability. They describe one network.
    let n = 8;
    let net = BusNetwork::new(n, n, 4, ConnectionScheme::balanced_single(n, 4).unwrap()).unwrap();
    let matrix = hier(n);
    let mask = FaultMask::with_failures(4, &[1]).unwrap();
    let view = DegradedView::new(&net, &mask).unwrap();
    assert_eq!(view.accessible_memory_count(), 6);

    let schedule = FaultSchedule::from_events(vec![FaultEvent {
        cycle: 0,
        bus: 1,
        kind: FaultEventKind::Fail,
    }])
    .unwrap();
    let mut sim = Simulator::build(&net, &matrix, 1.0).unwrap();
    let report = sim
        .run(
            &SimConfig::new(CYCLES)
                .with_warmup(CYCLES / 20)
                .with_seed(3)
                .with_faults(schedule),
        )
        .unwrap();
    let analytic = degraded_analyze(&net, &matrix, 1.0, &mask).unwrap();
    assert!((analytic.accessible_fraction - view.accessible_fraction()).abs() < 1e-12);
    assert!(
        (report.unreachable_rate - analytic.unreachable_load).abs() < 0.02,
        "simulated unreachable {} vs analytical {}",
        report.unreachable_rate,
        analytic.unreachable_load
    );
}
