//! Cross-layer agreement: the analytical, exact, and simulated bandwidths
//! must tell one consistent story on every scheme.

use multibus::exact::enumerate;
use multibus::prelude::*;

fn schemes(n: usize, b: usize) -> Vec<(&'static str, ConnectionScheme)> {
    vec![
        ("full", ConnectionScheme::Full),
        ("single", ConnectionScheme::balanced_single(n, b).unwrap()),
        ("partial", ConnectionScheme::PartialGroups { groups: 2 }),
        ("kclass", ConnectionScheme::uniform_classes(n, b).unwrap()),
        ("crossbar", ConnectionScheme::Crossbar),
    ]
}

/// Simulation must converge to the *exact* bandwidth (not the paper's
/// approximation) for every scheme, both rates, hierarchical and uniform
/// workloads.
#[test]
fn simulation_tracks_exact_for_all_schemes() {
    let n = 8;
    let b = 4;
    let hier = multibus::paper_params::hierarchical(n).unwrap().matrix();
    let unif = UniformModel::new(n, n).unwrap().matrix();
    for (workload_name, matrix) in [("hier", &hier), ("unif", &unif)] {
        for r in [1.0, 0.5] {
            for (name, scheme) in schemes(n, b) {
                let net = BusNetwork::new(n, n, b, scheme).unwrap();
                let exact = enumerate::exact_bandwidth(&net, matrix, r).unwrap();
                let mut sim = Simulator::build(&net, matrix, r).unwrap();
                let report = sim
                    .run(
                        &SimConfig::new(150_000)
                            .with_warmup(5_000)
                            .with_seed(1234)
                            .with_batch_len(1_000),
                    )
                    .unwrap();
                let gap = (report.bandwidth.mean() - exact).abs();
                assert!(
                    gap < 0.04,
                    "{workload_name}/{name}/r={r}: sim {} vs exact {exact}",
                    report.bandwidth
                );
                // The CI should usually cover the exact value; allow a
                // small tolerance beyond the half-width for conservatism.
                assert!(
                    exact >= report.bandwidth.lower() - 0.03
                        && exact <= report.bandwidth.upper() + 0.03,
                    "{workload_name}/{name}/r={r}: exact {exact} far outside {}",
                    report.bandwidth
                );
            }
        }
    }
}

/// The analytical approximation stays within a few percent of exact across
/// the full grid — the quantitative version of "the shape holds".
#[test]
fn analysis_error_is_bounded_across_grid() {
    let n = 8;
    for b in [2, 4, 8] {
        let matrix = multibus::paper_params::hierarchical(n).unwrap().matrix();
        for (name, scheme) in schemes(n, b) {
            for r in [1.0, 0.5, 0.25] {
                let net = BusNetwork::new(n, n, b, scheme.clone()).unwrap();
                let approx = memory_bandwidth(&net, &matrix, r).unwrap();
                let exact = enumerate::exact_bandwidth(&net, &matrix, r).unwrap();
                let rel = (approx - exact).abs() / exact.max(1e-9);
                assert!(
                    rel < 0.07,
                    "{name} B={b} r={r}: approx {approx} vs exact {exact}"
                );
            }
        }
    }
}

/// Closed-form inclusion–exclusion equals bitmask enumeration wherever both
/// apply, including the partial-bus group marginal.
#[test]
fn closed_form_exact_equals_enumeration() {
    use multibus::exact::distinct;
    for n in [8usize, 16] {
        let model = multibus::paper_params::hierarchical(n).unwrap();
        let matrix = model.matrix();
        for r in [1.0, 0.5] {
            // Full connection at several bus counts.
            for b in [n / 4, n / 2] {
                let closed = distinct::exact_full_bandwidth(&model, b, r).unwrap();
                let net = BusNetwork::new(n, n, b, ConnectionScheme::Full).unwrap();
                let brute = enumerate::exact_bandwidth(&net, &matrix, r).unwrap();
                assert!(
                    (closed - brute).abs() < 1e-9,
                    "full N={n} B={b} r={r}: {closed} vs {brute}"
                );
            }
            // Partial with g = 2.
            let b = n / 2;
            let closed = distinct::exact_partial_bandwidth(&model, 2, b, r).unwrap();
            let net =
                BusNetwork::new(n, n, b, ConnectionScheme::PartialGroups { groups: 2 }).unwrap();
            let brute = enumerate::exact_bandwidth(&net, &matrix, r).unwrap();
            assert!(
                (closed - brute).abs() < 1e-9,
                "partial N={n} r={r}: {closed} vs {brute}"
            );
        }
    }
}

/// The System façade agrees with calling the layers directly.
#[test]
fn system_facade_is_consistent() {
    let n = 8;
    let b = 4;
    let net = BusNetwork::new(n, n, b, ConnectionScheme::Full).unwrap();
    let model = multibus::paper_params::hierarchical(n).unwrap();
    let system = System::new(net.clone(), &model, 1.0).unwrap();
    let direct = memory_bandwidth(&net, &model.matrix(), 1.0).unwrap();
    assert_eq!(system.analytic().unwrap().bandwidth, direct);
    let exact_direct = enumerate::exact_bandwidth(&net, &model.matrix(), 1.0).unwrap();
    assert_eq!(system.exact().unwrap(), exact_direct);
    let eval = system.evaluate(None).unwrap();
    assert_eq!(eval.analytic.bandwidth, direct);
    assert_eq!(eval.exact, Some(exact_direct));
}

/// Replicated simulation tightens the confidence interval.
#[test]
fn replications_tighten_confidence() {
    let n = 8;
    let net = BusNetwork::new(n, n, 4, ConnectionScheme::Full).unwrap();
    let model = multibus::paper_params::hierarchical(n).unwrap();
    let system = System::new(net, &model, 1.0).unwrap();
    let config = SimConfig::new(20_000).with_warmup(1_000).with_seed(5);
    let few = system.simulate_replicated(&config, 2).unwrap();
    let many = system.simulate_replicated(&config, 8).unwrap();
    assert!(many.bandwidth.half_width() < few.bandwidth.half_width());
    // All replication means agree to within a few percent.
    let exact = system.exact().unwrap();
    assert!((many.bandwidth.mean() - exact).abs() < 0.05);
}

/// The two-stage arbitration is fair for the *symmetric* schemes: under
/// the processor-symmetric hierarchical workload, every processor completes
/// requests at the same long-run rate on full / single / partial / crossbar
/// networks. The K-class network is the deliberate exception — a
/// processor's favorite memory sits in a specific class, so processors
/// whose favorites live in poorly-connected classes complete less often
/// (the per-processor face of per-class fault tolerance).
#[test]
fn arbitration_is_fair_across_symmetric_processors() {
    let n = 8;
    let b = 4;
    let matrix = multibus::paper_params::hierarchical(n).unwrap().matrix();
    for (name, scheme) in schemes(n, b) {
        let net = BusNetwork::new(n, n, b, scheme).unwrap();
        let mut sim = Simulator::build(&net, &matrix, 1.0).unwrap();
        let report = sim
            .run(&SimConfig::new(200_000).with_warmup(5_000).with_seed(41))
            .unwrap();
        let fairness = report.processor_fairness();
        if name == "kclass" {
            // Processors 0-1 favor class C_1 memories (one bus of four):
            // markedly lower completion rate than processors 6-7 (class
            // C_4, all buses).
            assert!(fairness < 0.99, "kclass should be unfair: {fairness}");
            assert!(
                report.processor_service_rates[7] > report.processor_service_rates[0] + 0.1,
                "rates {:?}",
                report.processor_service_rates
            );
        } else {
            assert!(
                fairness > 0.999,
                "{name}: fairness {fairness}, rates {:?}",
                report.processor_service_rates
            );
        }
    }
}

/// …and measurably unfair when the workload itself is asymmetric: with
/// N > M favorite traffic, processors sharing a double-favorite memory
/// complete less often.
#[test]
fn asymmetric_workload_shows_in_fairness() {
    // 6 processors, 4 memories, favorite = p mod M: memories 0, 1 are each
    // the favorite of two processors (0 & 4, 1 & 5).
    let model = FavoriteModel::new(6, 4, 0.8).unwrap();
    let net = BusNetwork::new(6, 4, 2, ConnectionScheme::Full).unwrap();
    let mut sim = Simulator::build(&net, &model.matrix(), 1.0).unwrap();
    let report = sim
        .run(&SimConfig::new(200_000).with_warmup(5_000).with_seed(43))
        .unwrap();
    assert!(report.processor_fairness() < 0.999);
    // Processors 2 and 3 own exclusive favorites and finish more often than
    // processor 0, which shares memory 0 with processor 4.
    assert!(
        report.processor_service_rates[2] > report.processor_service_rates[0] + 0.05,
        "{:?}",
        report.processor_service_rates
    );
}
