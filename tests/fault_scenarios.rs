//! Degraded-mode behaviour: bus failures across every scheme, checked
//! against the analytical model of the *surviving* topology.

use multibus::exact::enumerate;
use multibus::prelude::*;
use multibus::sim::{FaultEvent, FaultEventKind, FaultSchedule};

fn fail_at_start(buses: &[usize]) -> FaultSchedule {
    FaultSchedule::from_events(
        buses
            .iter()
            .map(|&bus| FaultEvent {
                cycle: 0,
                bus,
                kind: FaultEventKind::Fail,
            })
            .collect(),
    )
    .unwrap()
}

fn simulate_with_failures(
    net: &BusNetwork,
    matrix: &RequestMatrix,
    failures: &[usize],
    cycles: u64,
) -> f64 {
    let mut sim = Simulator::build(net, matrix, 1.0).unwrap();
    sim.run(
        &SimConfig::new(cycles)
            .with_warmup(cycles / 20)
            .with_seed(77)
            .with_faults(fail_at_start(failures)),
    )
    .unwrap()
    .bandwidth
    .mean()
}

/// A full-connection network with f failed buses behaves exactly like a
/// healthy network with B − f buses.
#[test]
fn full_with_failures_equals_smaller_network() {
    let n = 8;
    let matrix = multibus::paper_params::hierarchical(n).unwrap().matrix();
    let net = BusNetwork::new(n, n, 6, ConnectionScheme::Full).unwrap();
    for failed in 1..=4usize {
        let degraded =
            simulate_with_failures(&net, &matrix, &(0..failed).collect::<Vec<_>>(), 120_000);
        let shrunk = BusNetwork::new(n, n, 6 - failed, ConnectionScheme::Full).unwrap();
        let reference = enumerate::exact_bandwidth(&shrunk, &matrix, 1.0).unwrap();
        assert!(
            (degraded - reference).abs() < 0.05,
            "{failed} failures: {degraded} vs B-{failed} reference {reference}"
        );
    }
}

/// Killing one group of a partial network halves it: the surviving group
/// still delivers its own subnetwork bandwidth.
#[test]
fn partial_group_loss_leaves_other_group_intact() {
    let n = 8;
    let matrix = multibus::paper_params::hierarchical(n).unwrap().matrix();
    let net = BusNetwork::new(n, n, 4, ConnectionScheme::PartialGroups { groups: 2 }).unwrap();
    // Buses 0, 1 form group 0.
    let degraded = simulate_with_failures(&net, &matrix, &[0, 1], 120_000);
    let healthy = enumerate::exact_bandwidth(&net, &matrix, 1.0).unwrap();
    assert!(
        (degraded - healthy / 2.0).abs() < 0.08,
        "half the network should survive: {degraded} vs {healthy}/2"
    );
    // Reachability: exactly half the memories survive.
    let mask = FaultMask::with_failures(4, &[0, 1]).unwrap();
    assert_eq!(
        DegradedView::new(&net, &mask)
            .unwrap()
            .accessible_memory_count(),
        4
    );
}

/// The single-connection network loses exactly the failed bus's memories.
#[test]
fn single_connection_unreachable_accounting() {
    let n = 8;
    let matrix = multibus::paper_params::hierarchical(n).unwrap().matrix();
    let net = BusNetwork::new(n, n, 4, ConnectionScheme::balanced_single(n, 4).unwrap()).unwrap();
    let mut sim = Simulator::build(&net, &matrix, 1.0).unwrap();
    let report = sim
        .run(
            &SimConfig::new(50_000)
                .with_warmup(1_000)
                .with_seed(3)
                .with_faults(fail_at_start(&[0])),
        )
        .unwrap();
    // Memories 0, 1 (cluster 0's pair) are on bus 0: their traffic is
    // dropped as unreachable. Processors 0 and 1 send 0.9 of their traffic
    // to those two memories, the other six send 2·(0.1/6) each.
    let expected_unreachable = 2.0 * 0.9 + 6.0 * (2.0 * 0.1 / 6.0);
    assert!(
        (report.unreachable_rate - expected_unreachable).abs() < 0.05,
        "unreachable {} vs expected {expected_unreachable}",
        report.unreachable_rate
    );
    assert_eq!(report.bus_utilization[0], 0.0);
}

/// K-class networks degrade asymmetrically: high-bus failures are absorbed,
/// low-bus failures isolate the low class.
#[test]
fn kclass_failure_asymmetry() {
    let n = 8;
    let b = 4;
    let matrix = multibus::paper_params::hierarchical(n).unwrap().matrix();
    let net = BusNetwork::new(n, n, b, ConnectionScheme::uniform_classes(n, b).unwrap()).unwrap();
    // Fail top bus (index 3, reachable only by class C_4): nothing becomes
    // unreachable.
    let mask_high = FaultMask::with_failures(b, &[3]).unwrap();
    assert!(DegradedView::new(&net, &mask_high)
        .unwrap()
        .fully_connected());
    // Fail bus 0 (class C_1's only bus): its two memories drop off.
    let mask_low = FaultMask::with_failures(b, &[0]).unwrap();
    assert_eq!(
        DegradedView::new(&net, &mask_low)
            .unwrap()
            .accessible_memory_count(),
        6
    );
    // And bandwidth is worse in the low-failure case.
    let high = simulate_with_failures(&net, &matrix, &[3], 80_000);
    let low = simulate_with_failures(&net, &matrix, &[0], 80_000);
    assert!(
        high > low,
        "losing the low (shared) bus must hurt more: {high} vs {low}"
    );
}

/// Repair restores full bandwidth.
#[test]
fn repair_restores_bandwidth() {
    let n = 8;
    let matrix = multibus::paper_params::hierarchical(n).unwrap().matrix();
    let net = BusNetwork::new(n, n, 4, ConnectionScheme::Full).unwrap();
    let schedule = FaultSchedule::from_events(vec![
        FaultEvent {
            cycle: 0,
            bus: 0,
            kind: FaultEventKind::Fail,
        },
        // Repair just before measurement starts: warmup absorbs the outage.
        FaultEvent {
            cycle: 4_999,
            bus: 0,
            kind: FaultEventKind::Repair,
        },
    ])
    .unwrap();
    let mut sim = Simulator::build(&net, &matrix, 1.0).unwrap();
    let repaired = sim
        .run(
            &SimConfig::new(100_000)
                .with_warmup(5_000)
                .with_seed(9)
                .with_faults(schedule),
        )
        .unwrap();
    let healthy = enumerate::exact_bandwidth(&net, &matrix, 1.0).unwrap();
    assert!(
        (repaired.bandwidth.mean() - healthy).abs() < 0.05,
        "after repair: {} vs healthy {healthy}",
        repaired.bandwidth
    );
}

/// Degree-of-fault-tolerance guarantees from Table I hold for every scheme.
#[test]
fn table_one_guarantees_hold() {
    let n = 16;
    let b = 8;
    let schemes: Vec<ConnectionScheme> = vec![
        ConnectionScheme::Full,
        ConnectionScheme::balanced_single(n, b).unwrap(),
        ConnectionScheme::PartialGroups { groups: 2 },
        ConnectionScheme::uniform_classes(n, 4).unwrap(),
    ];
    for scheme in schemes {
        let net = BusNetwork::new(n, n, b, scheme).unwrap();
        let degree = net.fault_tolerance_degree();
        // Any `degree` failures leave the network fully connected — check
        // the worst case (prefix failures hit the K-class low buses, which
        // is its weakest direction).
        if degree > 0 {
            let failures: Vec<usize> = (0..degree).collect();
            let mask = FaultMask::with_failures(b, &failures).unwrap();
            assert!(
                DegradedView::new(&net, &mask).unwrap().fully_connected(),
                "{} must survive {degree} failures",
                net.kind()
            );
        }
    }
}
