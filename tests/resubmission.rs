//! Resubmission-mode semantics (the extension relaxing the paper's
//! assumption 5).

use multibus::prelude::*;

fn system(n: usize, b: usize, r: f64) -> System {
    let net = BusNetwork::new(n, n, b, ConnectionScheme::Full).unwrap();
    let model = multibus::paper_params::hierarchical(n).unwrap();
    System::new(net, &model, r).unwrap()
}

#[test]
fn throughput_never_exceeds_capacity_or_offered_load() {
    for r in [0.2, 0.6, 1.0] {
        let sys = system(8, 2, r);
        let report = sys
            .simulate(
                &SimConfig::new(60_000)
                    .with_warmup(5_000)
                    .with_seed(4)
                    .with_resubmission(true),
            )
            .unwrap();
        assert!(report.bandwidth.mean() <= 2.0 + 1e-9);
        // Fresh-issue rate adapts: a processor with a pending retry issues
        // nothing new, so offered load ≤ N·r.
        assert!(report.offered_load <= 8.0 * r + 1e-9);
    }
}

#[test]
fn light_load_is_wait_free_heavy_load_queues() {
    let light = system(8, 4, 0.1)
        .simulate(
            &SimConfig::new(80_000)
                .with_warmup(2_000)
                .with_seed(5)
                .with_resubmission(true),
        )
        .unwrap();
    assert!(
        light.mean_wait < 0.05,
        "light load wait {}",
        light.mean_wait
    );
    let heavy = system(8, 2, 1.0)
        .simulate(
            &SimConfig::new(80_000)
                .with_warmup(2_000)
                .with_seed(5)
                .with_resubmission(true),
        )
        .unwrap();
    assert!(heavy.mean_wait > 0.5, "heavy load wait {}", heavy.mean_wait);
    assert!(heavy.max_wait >= 3);
}

#[test]
fn resubmission_increases_throughput_under_saturation() {
    // Under drop semantics, collisions waste service slots that retries
    // would reclaim: at saturation, resubmission throughput ≥ drop
    // throughput.
    let sys = system(8, 4, 1.0);
    let drop = sys
        .simulate(&SimConfig::new(80_000).with_warmup(4_000).with_seed(6))
        .unwrap();
    let resub = sys
        .simulate(
            &SimConfig::new(80_000)
                .with_warmup(4_000)
                .with_seed(6)
                .with_resubmission(true),
        )
        .unwrap();
    assert!(
        resub.bandwidth.mean() >= drop.bandwidth.mean() - 0.02,
        "resubmission {} vs drop {}",
        resub.bandwidth,
        drop.bandwidth
    );
}

#[test]
fn unsaturated_resubmission_serves_all_offered_load() {
    // Below the knee, everything offered is eventually served: throughput
    // equals the fresh-issue rate.
    let sys = system(8, 4, 0.3);
    let report = sys
        .simulate(
            &SimConfig::new(100_000)
                .with_warmup(5_000)
                .with_seed(8)
                .with_resubmission(true),
        )
        .unwrap();
    assert!(
        (report.bandwidth.mean() - report.offered_load).abs() < 0.02,
        "throughput {} vs offered {}",
        report.bandwidth,
        report.offered_load
    );
    assert!((report.acceptance - 1.0).abs() < 0.02);
}

#[test]
fn waits_are_zero_under_drop_semantics() {
    let sys = system(8, 2, 1.0);
    let report = sys.simulate(&SimConfig::new(20_000).with_seed(2)).unwrap();
    assert_eq!(report.mean_wait, 0.0);
    assert_eq!(report.max_wait, 0);
}
