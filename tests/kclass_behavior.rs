//! Behavioural tests of the paper's proposed K-class networks: service
//! fairness across classes, the placement principle, and the §III-D
//! procedure's structural limits.

use multibus::exact::enumerate;
use multibus::prelude::*;

/// Under saturation, modules in higher classes (more buses) are served more
/// often than modules in lower classes — the flip side of per-class fault
/// tolerance.
#[test]
fn low_classes_are_served_less_under_saturation() {
    let n = 8;
    let b = 4;
    let net = BusNetwork::new(n, n, b, ConnectionScheme::uniform_classes(n, b).unwrap()).unwrap();
    let matrix = UniformModel::new(n, n).unwrap().matrix();
    let mut sim = Simulator::build(&net, &matrix, 1.0).unwrap();
    let report = sim
        .run(&SimConfig::new(200_000).with_warmup(5_000).with_seed(21))
        .unwrap();
    // Classes: C_1 = {0,1} (1 bus) … C_4 = {6,7} (4 buses).
    let class_rate = |c: usize| {
        let range = net.memories_of_class(c).unwrap();
        range.map(|j| report.memory_service_rates[j]).sum::<f64>()
    };
    let rates: Vec<f64> = (0..4).map(class_rate).collect();
    // Uniform traffic hits all classes equally, so service differences are
    // pure connectivity effects: strictly more service for higher classes.
    for pair in rates.windows(2) {
        assert!(
            pair[1] > pair[0] - 0.01,
            "service must not decrease with class: {rates:?}"
        );
    }
    assert!(
        rates[3] > rates[0] + 0.05,
        "top class should clearly beat bottom: {rates:?}"
    );
}

/// The §II-A placement principle, measured: putting the hot modules in the
/// top class recovers bandwidth relative to the bottom class, for both the
/// analysis and the exact model.
#[test]
fn placement_principle_quantified() {
    let n = 8;
    let b = 4;
    let net = BusNetwork::new(n, n, b, ConnectionScheme::uniform_classes(n, b).unwrap()).unwrap();
    let hot_row = |hot: [usize; 2]| {
        let mut row = vec![0.2 / 6.0; n];
        row[hot[0]] = 0.4;
        row[hot[1]] = 0.4;
        row
    };
    let hot_top = RequestMatrix::from_rows(vec![hot_row([6, 7]); n]).unwrap();
    let hot_bottom = RequestMatrix::from_rows(vec![hot_row([0, 1]); n]).unwrap();
    for (label, value_top, value_bottom) in [
        (
            "analysis",
            memory_bandwidth(&net, &hot_top, 1.0).unwrap(),
            memory_bandwidth(&net, &hot_bottom, 1.0).unwrap(),
        ),
        (
            "exact",
            enumerate::exact_bandwidth(&net, &hot_top, 1.0).unwrap(),
            enumerate::exact_bandwidth(&net, &hot_bottom, 1.0).unwrap(),
        ),
    ] {
        assert!(
            value_top > value_bottom + 0.1,
            "{label}: hot-on-top {value_top} must beat hot-on-bottom {value_bottom}"
        );
    }
}

/// Structural limit of the §III-D procedure: with K classes, bus `i` can
/// only ever carry spill-down from classes whose top bus is ≥ i, so when
/// classes are small relative to `B − K + j`, low buses sit idle even at
/// full load.
#[test]
fn kclass_low_buses_can_be_unreachable() {
    // 8 memories, 8 buses, K = 2 classes of 4: class tops are buses 7 and 8
    // (1-based), so spill-down reaches at most bus 4; buses 1–3 are dead
    // weight.
    let net = BusNetwork::new(8, 8, 8, ConnectionScheme::uniform_classes(8, 2).unwrap()).unwrap();
    let all_requested = vec![true; 8];
    assert_eq!(enumerate::served_given_requested(&net, &all_requested), 5);
    // The simulator agrees: utilization of buses 0..3 is exactly zero.
    let matrix = UniformModel::new(8, 8).unwrap().matrix();
    let mut sim = Simulator::build(&net, &matrix, 1.0).unwrap();
    let report = sim.run(&SimConfig::new(20_000).with_seed(2)).unwrap();
    for bus in 0..3 {
        assert_eq!(
            report.bus_utilization[bus], 0.0,
            "bus {bus} should be unreachable"
        );
    }
    assert!(report.bus_utilization[7] > 0.9);
}

/// K = B classes avoid that pathology: every bus is some class's top bus.
#[test]
fn k_equals_b_uses_every_bus() {
    let net = BusNetwork::new(8, 8, 8, ConnectionScheme::uniform_classes(8, 8).unwrap()).unwrap();
    let all_requested = vec![true; 8];
    assert_eq!(enumerate::served_given_requested(&net, &all_requested), 8);
}
