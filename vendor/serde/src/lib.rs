//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its report types so
//! that downstream users with the real serde can serialize them, but the
//! offline build environment cannot fetch serde itself. This stub keeps the
//! derive attributes compiling: the traits are markers and the derives
//! expand to nothing. JSON emitted by the workspace (e.g. `BENCH_sim.json`)
//! is hand-rolled and does not go through serde.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use super::DeserializeOwned;
}
