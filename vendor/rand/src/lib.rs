//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the narrow API surface it actually uses: [`Rng`] / [`RngExt`] with
//! `random` and `random_range`, [`SeedableRng::seed_from_u64`], and a
//! deterministic [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64).
//!
//! Determinism contract: for a given seed the stream is stable across
//! platforms and releases of this workspace — simulation golden tests
//! depend on it. Do not change the generator without refreshing the
//! golden values in `crates/sim/tests/golden.rs`.

#![forbid(unsafe_code)]

/// The raw generator interface: a source of uniformly random `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Samples uniformly from `range`. Panics on an empty range.
    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_single(self)
    }

    /// Samples a boolean that is `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Alias kept for call sites written against the `RngExt` naming.
pub use Rng as RngExt;

/// Types samplable from their "standard" distribution via [`Rng::random`].
pub trait Random {
    /// Draws one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let hi = (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit range.
                    return rng.next_u64() as $t;
                }
                let hi = (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64;
                (start as u64).wrapping_add(hi) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::random(rng)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * f64::random(rng)
    }
}

/// Seedable construction, deterministic across platforms.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (SplitMix64-expanded seed).
    ///
    /// Deliberately **not** `Clone`: replications want independent streams,
    /// and accidental stream sharing is a classic simulation bug.
    #[derive(Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_cover_uniformly() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 50_000.0 - 0.2).abs() < 0.02);
        }
        for _ in 0..1_000 {
            let v = rng.random_range(3..=7u64);
            assert!((3..=7).contains(&v));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5..5usize);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.random_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 10);
    }
}
