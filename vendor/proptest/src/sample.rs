//! Sampling helpers (`prop::sample::Index`).

use crate::strategy::Arbitrary;
use rand::rngs::StdRng;
use rand::Rng;

/// An index into a collection whose length is only known at use time.
#[derive(Debug, Clone, Copy)]
pub struct Index(u64);

impl Index {
    /// Maps this index into `0..len`. Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        Self(rng.random())
    }
}
