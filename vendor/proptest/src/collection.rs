//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A size specification for collection strategies: an exact size or a
/// (half-open / inclusive) range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Builds a `Vec` strategy with the given element strategy and size.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
