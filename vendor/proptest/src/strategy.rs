//! Strategies: deterministic value generators (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of values for property tests.
///
/// Object-safe core (`sample`) plus sized combinators mirroring proptest.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f`.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values accepted by `pred` (bounded resampling).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Combines filtering and mapping (bounded resampling).
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Resampling bound for filter-style strategies before giving up.
const FILTER_ATTEMPTS: usize = 10_000;

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..FILTER_ATTEMPTS {
            let value = self.inner.sample(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!("prop_filter '{}' rejected every sample", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        for _ in 0..FILTER_ATTEMPTS {
            if let Some(value) = (self.f)(self.inner.sample(rng)) {
                return value;
            }
        }
        panic!("prop_filter_map '{}' rejected every sample", self.reason);
    }
}

/// Uniform choice over type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let arm = rng.random_range(0..self.arms.len());
        self.arms[arm].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F2);

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// The canonical strategy for `T` (`any::<T>()`).
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Builds the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}
