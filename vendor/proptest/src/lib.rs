//! Offline mini-proptest.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — `proptest!`, range/tuple/`Just` strategies, `prop_map`,
//! `prop_flat_map`, `prop_filter(_map)`, `prop_oneof!`,
//! `proptest::collection::vec`, `any::<T>()`, and the `prop_assert*` /
//! `prop_assume!` macros — on top of the vendored deterministic `rand`.
//!
//! Differences from real proptest: no shrinking (failures report the
//! sampled inputs via the assertion message only), and case generation is
//! deterministic per test function (fixed seed), so failures always
//! reproduce.

#![forbid(unsafe_code)]

pub mod collection;
pub mod sample;
pub mod strategy;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Error produced by one test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be resampled.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject() -> Self {
        Self::Reject
    }
}

/// Result type of a property test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Drives one property test: samples inputs and runs the body until
/// `config.cases` cases pass, panicking on the first failure.
///
/// Rejections (`prop_assume!`) do not count toward the case total but are
/// capped to catch filters that almost never accept.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    let mut rng = StdRng::seed_from_u64(0x70726f7065727479); // "property"
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let budget = u64::from(config.cases.max(1)) * 20 + 1_000;
    while passed < config.cases {
        attempts += 1;
        assert!(
            attempts <= budget,
            "{name}: too many rejected cases ({} passed of {} after {attempts} attempts)",
            passed,
            config.cases
        );
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {} failed: {msg}", passed + 1)
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError, TestCaseResult,
    };

    /// Namespace mirror so `prop::sample::Index` and friends resolve.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a property test, returning a failure (not
/// panicking) so the runner can report the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (resampled without counting as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond);
    };
}

/// Uniform choice between heterogeneous strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property test functions. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items (attributes, including
/// `#[test]`, are passed through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                #[allow(clippy::redundant_closure_call)]
                (|| -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
