//! Offline mini-criterion.
//!
//! Provides the API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `bench_with_input`, `benchmark_group` (and `BenchmarkGroup`),
//! `BenchmarkId`, `black_box`, and `Bencher::iter` —
//! with a simple wall-clock measurement loop instead of criterion's
//! statistical machinery. Each benchmark prints its mean iteration time.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum measurement window per benchmark.
const TARGET_TIME: Duration = Duration::from_millis(300);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        bencher.report(&id.0);
        self
    }

    /// Opens a named group; group members report as `group/member`.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Runs one benchmark within the group, parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Ends the group (real criterion finalizes reports here; a no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` repeatedly until the measurement window fills.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One calibration run, excluded from the measurement.
        black_box(routine());
        let started = Instant::now();
        let mut iterations = 0u64;
        while started.elapsed() < TARGET_TIME {
            black_box(routine());
            iterations += 1;
        }
        self.iterations = iterations.max(1);
        self.elapsed = started.elapsed();
    }

    fn report(&self, name: &str) {
        if self.iterations == 0 {
            println!("bench {name}: no measurement (Bencher::iter never called)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iterations as f64;
        println!(
            "bench {name}: {:.3} ms/iter ({} iters in {:.2?})",
            per_iter * 1e3,
            self.iterations,
            self.elapsed
        );
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
