//! No-op derive macros for the offline serde stub: `#[derive(Serialize,
//! Deserialize)]` must parse and expand, but nothing in this workspace
//! consumes the generated impls, so the expansion is empty.

use proc_macro::TokenStream;

/// Expands to nothing; keeps `#[derive(Serialize)]` compiling offline.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; keeps `#[derive(Deserialize)]` compiling offline.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
