//! `multibus` — umbrella crate for the multiple-bus interconnection network
//! workspace reproducing Chen & Sheu (ICDCS 1988).
//!
//! This crate simply re-exports the high-level API of [`mbus_core`]. See the
//! workspace `README.md` for the architecture overview, `DESIGN.md` for the
//! per-experiment index, and the `examples/` directory for runnable
//! demonstrations.

#![forbid(unsafe_code)]

pub use mbus_core::*;
