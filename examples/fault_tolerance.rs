//! Fault-tolerance comparison across connection schemes.
//!
//! The paper assigns each scheme a *degree of fault tolerance* (Table I) but
//! never measures degraded performance. This example injects progressive
//! bus failures into every scheme on a 16 × 16 × 8 network and reports both
//! reachability (how many memories survive) and simulated degraded
//! bandwidth — including the K-class network's per-class degradation, its
//! selling point.
//!
//! Run with: `cargo run --example fault_tolerance`

use multibus::prelude::*;
use multibus::sim::FaultSchedule;

fn degraded_bandwidth(
    net: &BusNetwork,
    model: &dyn RequestModel,
    failures: &[usize],
) -> Result<(usize, f64), Box<dyn std::error::Error>> {
    let mask = FaultMask::with_failures(net.buses(), failures)?;
    let accessible = DegradedView::new(net, &mask)?.accessible_memory_count();
    let events: Vec<_> = failures
        .iter()
        .map(|&bus| multibus::sim::FaultEvent {
            cycle: 0,
            bus,
            kind: multibus::sim::FaultEventKind::Fail,
        })
        .collect();
    let config = SimConfig::new(40_000)
        .with_warmup(2_000)
        .with_seed(7)
        .with_faults(FaultSchedule::from_events(events)?);
    let system = System::new(net.clone(), model, 1.0)?;
    let report = system.simulate(&config)?;
    Ok((accessible, report.bandwidth.mean()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let b = 8;
    let model = HierarchicalModel::two_level_paired(n, 4, [0.6, 0.3, 0.1])?;
    let schemes: Vec<(&str, ConnectionScheme)> = vec![
        ("full", ConnectionScheme::Full),
        ("single", ConnectionScheme::balanced_single(n, b)?),
        ("partial g=2", ConnectionScheme::PartialGroups { groups: 2 }),
        ("kclass K=4", ConnectionScheme::uniform_classes(n, 4)?),
    ];

    println!("degraded operation of a 16x16x8 network (hierarchical, r = 1.0)\n");
    println!("| scheme | FT degree | failures | reachable memories | bandwidth |");
    println!("|---|---|---|---|---|");
    for (name, scheme) in &schemes {
        let net = BusNetwork::new(n, n, b, scheme.clone())?;
        let degree = net.fault_tolerance_degree();
        for failures in [vec![], vec![0], vec![0, 1], vec![0, 1, 2, 3]] {
            let (reachable, bandwidth) = degraded_bandwidth(&net, &model, &failures)?;
            println!(
                "| {name} | {degree} | {} | {reachable}/{n} | {bandwidth:.3} |",
                failures.len()
            );
        }
    }

    // The K-class differentiator: which buses die matters. Failing the two
    // *high* buses (only reachable by the top class) costs nothing in
    // reachability; failing the two *low* buses isolates class C_1.
    let kclass = BusNetwork::new(n, n, b, ConnectionScheme::uniform_classes(n, 4)?)?;
    println!("\nK-class asymmetry (K = 4, B = 8; class C_1 owns buses 1..5):");
    for (label, failures) in [
        ("high buses 7,8", vec![6usize, 7]),
        ("low buses 1,2", vec![0, 1]),
    ] {
        let (reachable, bandwidth) = degraded_bandwidth(&kclass, &model, &failures)?;
        println!("  fail {label}: {reachable}/{n} reachable, bandwidth {bandwidth:.3}");
    }

    // Reachability invariants from Table I.
    let full = BusNetwork::new(n, n, b, ConnectionScheme::Full)?;
    let mask = FaultMask::with_failures(b, &(0..b - 1).collect::<Vec<_>>())?;
    assert!(DegradedView::new(&full, &mask)?.fully_connected());
    println!(
        "\nfull connection survives B-1 = {} failures fully connected.",
        b - 1
    );
    Ok(())
}
