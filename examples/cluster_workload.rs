//! The §III-A motivation pipeline, end to end: communicating tasks →
//! cluster-aware placement → hierarchical traffic → interconnect sizing.
//!
//! The paper motivates the hierarchical requesting model by how jobs are
//! scheduled: tasks that communicate heavily are placed on the same cluster,
//! which concentrates memory traffic locally. This example generates such a
//! job, measures the traffic each placement induces, fits the hierarchical
//! model, and uses the analysis to pick a bus count.
//!
//! Run with: `cargo run --example cluster_workload`

use multibus::prelude::*;
use multibus::workload::taskgraph::{derived_model, derived_shares, Assignment, TaskGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);

    // A job of 4 task groups × 8 tasks; intra-group edges are 20× heavier.
    let job = TaskGraph::synthetic(4, 8, 10.0, 0.5, &mut rng)?;
    println!(
        "job: {} tasks in {} groups, total communication weight {:.1}",
        job.tasks(),
        job.group_count(),
        job.total_weight()
    );

    // Target machine: 16 processors in 4 clusters (the paper's hierarchy).
    let hierarchy = Hierarchy::two_level(16, 4)?;

    // Good placement: one group per cluster.  Control: groups scattered.
    let local = Assignment::locality_aware(&job, &hierarchy);
    let scattered = Assignment::scattered(&job, 16);

    let local_shares = derived_shares(&job, &local, &hierarchy)?;
    let scattered_shares = derived_shares(&job, &scattered, &hierarchy)?;
    println!("\ninduced traffic shares [favorite, cluster, remote]:");
    println!("  locality-aware: {local_shares:.3?}");
    println!("  scattered:      {scattered_shares:.3?}");

    // Fit hierarchical models and compare interconnect needs at B = N/2.
    let network = BusNetwork::new(16, 16, 8, ConnectionScheme::Full)?;
    let local_model = derived_model(&job, &local, &hierarchy)?;
    let scattered_model = derived_model(&job, &scattered, &hierarchy)?;
    let bw_local = memory_bandwidth(&network, &local_model.matrix(), 1.0)?;
    let bw_scattered = memory_bandwidth(&network, &scattered_model.matrix(), 1.0)?;
    println!("\nbandwidth on a 16x16x8 full-connection network (r = 1):");
    println!("  locality-aware placement: {bw_local:.3} requests/cycle");
    println!("  scattered placement:      {bw_scattered:.3} requests/cycle");
    assert!(
        bw_local > bw_scattered,
        "locality must reduce memory contention"
    );

    // How many buses does the placed workload actually need? (§IV's
    // question.)  Find the smallest B reaching 95% of the crossbar.
    let matrix = local_model.matrix();
    let needed = multibus::analysis::sweep::buses_for_crossbar_fraction(16, &matrix, 1.0, 0.95)?;
    println!("\nsmallest B reaching 95% of crossbar bandwidth at r=1.0: {needed}");
    let needed_half =
        multibus::analysis::sweep::buses_for_crossbar_fraction(16, &matrix, 0.5, 0.95)?;
    println!("…and at r=0.5: {needed_half} (the paper: ~N/2 suffices at half rate)");
    assert!(needed_half <= needed);
    Ok(())
}
