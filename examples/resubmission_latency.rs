//! Beyond assumption 5: request latency under resubmission.
//!
//! The paper drops blocked requests (its assumption 5), so it can only speak
//! about bandwidth. With the simulator's resubmission mode, blocked requests
//! retry until served, which makes *latency* measurable. This example sweeps
//! the request rate on an 8 × 8 × 2 full-connection network and prints the
//! classic throughput/latency knee.
//!
//! Run with: `cargo run --example resubmission_latency`

use multibus::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = BusNetwork::new(8, 8, 2, ConnectionScheme::Full)?;
    let model = HierarchicalModel::two_level_paired(8, 4, [0.6, 0.3, 0.1])?;

    println!("8x8x2 full connection, hierarchical workload, resubmission semantics\n");
    println!("| r | offered (fresh req/cyc) | throughput | mean wait | max wait |");
    println!("|---|---|---|---|---|");
    let mut waits = Vec::new();
    for r in [0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0] {
        let system = System::new(net.clone(), &model, r)?;
        let report = system.simulate(
            &SimConfig::new(200_000)
                .with_warmup(20_000)
                .with_seed(99)
                .with_resubmission(true),
        )?;
        println!(
            "| {r} | {:.3} | {:.3} | {:.3} | {} |",
            report.offered_load,
            report.bandwidth.mean(),
            report.mean_wait,
            report.max_wait
        );
        waits.push(report.mean_wait);
        // Throughput can never exceed the bus capacity.
        assert!(report.bandwidth.mean() <= 2.0 + 1e-9);
    }

    // Latency grows monotonically toward saturation.
    assert!(
        waits.windows(2).all(|w| w[1] >= w[0] - 0.05),
        "wait must grow with load: {waits:?}"
    );
    assert!(waits[0] < 0.2, "light load is nearly wait-free");
    assert!(
        *waits.last().unwrap() > 1.0,
        "saturated load must queue substantially"
    );
    println!("\nlight load is served immediately; past the knee (offered > 2 buses)\nqueues build and the mean wait grows without bound as r -> 1.");
    Ok(())
}
