//! Design-space exploration: the §IV performance / cost / fault-tolerance
//! trade-off, reproduced as a frontier sweep.
//!
//! For a 32-processor machine under the paper's hierarchical workload, this
//! sweeps every connection scheme over bus counts and prints bandwidth,
//! connection cost, performance-cost ratio, and fault tolerance — ending
//! with the paper's qualitative conclusions, asserted.
//!
//! Run with: `cargo run --example design_space`

use multibus::analysis::cost_effectiveness::{compare, CostEffectiveness};
use multibus::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 32;
    let model = HierarchicalModel::two_level_paired(n, 4, [0.6, 0.3, 0.1])?;
    let matrix = model.matrix();

    println!("design space for a 32-processor machine (hierarchical, r = 1.0)\n");
    println!("| B | scheme | bandwidth | connections | bw / 1000 conn | FT degree |");
    println!("|---|---|---|---|---|---|");

    let mut last_rows: Vec<CostEffectiveness> = Vec::new();
    for b in [4usize, 8, 16] {
        let networks = vec![
            BusNetwork::new(n, n, b, ConnectionScheme::Full)?,
            BusNetwork::new(n, n, b, ConnectionScheme::PartialGroups { groups: 2 })?,
            BusNetwork::new(n, n, b, ConnectionScheme::uniform_classes(n, b)?)?,
            BusNetwork::new(n, n, b, ConnectionScheme::balanced_single(n, b)?)?,
        ];
        let rows = compare(&networks, &matrix, 1.0)?;
        for row in &rows {
            println!(
                "| {b} | {} | {:.3} | {} | {:.3} | {} |",
                row.scheme,
                row.bandwidth,
                row.connections,
                row.ratio_per_kiloconnection(),
                row.fault_tolerance
            );
        }
        last_rows = rows;
    }

    // The paper's §IV conclusions, checked on the B = 16 frontier.
    let by = |needle: &str| {
        last_rows
            .iter()
            .find(|r| r.scheme.contains(needle))
            .expect("scheme present")
    };
    let full = by("full");
    let single = by("single");
    let partial = by("partial bus network");
    assert!(full.bandwidth >= partial.bandwidth && partial.bandwidth >= single.bandwidth);
    assert!(single.ratio > partial.ratio && partial.ratio > full.ratio);
    assert_eq!(single.fault_tolerance, 0);
    assert!(full.fault_tolerance > partial.fault_tolerance);

    println!("\nconclusions (paper §IV, reproduced):");
    println!("  * full connection: highest bandwidth, worst cost-effectiveness;");
    println!("  * single connection: most cost-effective, zero fault tolerance;");
    println!("  * partial / K-class networks: intermediate on every axis —");
    println!("    K classes additionally make fault tolerance per-class tunable.");
    Ok(())
}
