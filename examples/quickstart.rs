//! Quickstart: evaluate one multiple-bus configuration three ways.
//!
//! Builds the paper's Table II cell (N = 8 processors/memories, B = 4
//! buses, full bus–memory connection, two-level hierarchical workload,
//! r = 1.0) and compares the closed-form analysis, the exact reference, and
//! a simulation.
//!
//! Run with: `cargo run --example quickstart`

use multibus::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Topology: 8 processors, 8 memories, 4 buses, every memory on every
    //    bus (the paper's Fig. 1 scheme).
    let network = BusNetwork::new(8, 8, 4, ConnectionScheme::Full)?;

    // 2. Workload: the paper's hierarchical requesting model — four
    //    clusters; a processor sends 60% of its requests to its favorite
    //    memory, 30% to its cluster, 10% elsewhere.
    let model = HierarchicalModel::two_level_paired(8, 4, [0.6, 0.3, 0.1])?;

    // 3. A system is a network × workload × request-rate combination.
    let system = System::new(network, &model, 1.0)?;

    // Closed-form analysis (the paper's equations (2)-(4)).
    let analytic = system.analytic()?;
    println!(
        "analytical bandwidth: {:.4} requests/cycle",
        analytic.bandwidth
    );
    println!("acceptance prob.:     {:.4}", analytic.acceptance);

    // Exact reference (exhaustive enumeration — no independence
    // approximation).
    let exact = system.exact()?;
    println!("exact bandwidth:      {exact:.4} requests/cycle");

    // Cycle-accurate simulation with the two-stage arbitration of §II-A.
    let report = system.simulate(&SimConfig::new(100_000).with_warmup(5_000).with_seed(42))?;
    println!("simulated bandwidth:  {}", report.bandwidth);
    println!(
        "bus utilizations:     {:?}",
        report
            .bus_utilization
            .iter()
            .map(|u| (u * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    // The paper's printed value for this cell is 3.97.
    assert!((analytic.bandwidth - 3.97).abs() < 0.011);
    assert!(report.bandwidth.contains(exact));
    println!("\npaper Table II prints 3.97 for this cell — reproduced.");
    Ok(())
}
